//! Complementary cumulative distribution functions.
//!
//! Nearly every figure in the paper is a CCDF: the fraction of samples with
//! a value *greater than* `x`, plotted either on linear axes (Figs 6, 8–11,
//! 14) or log-log axes (Fig 12). [`Ccdf`] stores the sorted sample and can
//! be evaluated at arbitrary points, emitted as a step series, or resampled
//! on linear/log grids for plotting.

/// An empirical complementary cumulative distribution function.
///
/// # Examples
///
/// ```
/// use borg_analysis::ccdf::Ccdf;
///
/// let c = Ccdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(c.eval(0.0), 1.0);   // every sample exceeds 0
/// assert_eq!(c.eval(2.0), 0.5);   // 3 and 4 exceed 2
/// assert_eq!(c.eval(4.0), 0.0);   // nothing exceeds the max
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ccdf {
    sorted: Vec<f64>,
}

impl Ccdf {
    /// Builds a CCDF from samples; non-finite values are dropped.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ccdf { sorted }
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `P(X > x)`: the fraction of samples strictly greater than `x`.
    ///
    /// Returns 0 for an empty CCDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of samples <= x.
        let le = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - le) as f64 / self.sorted.len() as f64
    }

    /// The value exceeded by a `q` fraction of samples (the inverse CCDF),
    /// i.e. the `(1 - q)`-quantile. Returns `None` when empty or `q`
    /// outside `[0, 1]`.
    pub fn quantile_exceeding(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        Some(crate::percentile::percentile_of_sorted(
            &self.sorted,
            (1.0 - q) * 100.0,
        ))
    }

    /// Median of the samples.
    pub fn median(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(crate::percentile::percentile_of_sorted(&self.sorted, 50.0))
        }
    }

    /// The full step series `(x_i, P(X > x_i))`, one point per distinct
    /// sample value, suitable for plotting.
    // Exact equality groups runs of identical samples in the sorted array;
    // an epsilon would merge distinct values and misplace step points.
    #[allow(clippy::float_cmp)]
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, (n - j) as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Evaluates the CCDF on `points` evenly spaced values of x between
    /// `lo` and `hi` inclusive.
    pub fn linear_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid_series(self, linear_grid(lo, hi, points))
    }

    /// Evaluates the CCDF on `points` log-spaced values of x between `lo`
    /// and `hi` inclusive; both bounds must be positive.
    pub fn log_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid_series(self, log_grid(lo, hi, points))
    }
}

fn grid_series(ccdf: &Ccdf, grid: Vec<f64>) -> Vec<(f64, f64)> {
    grid.into_iter().map(|x| (x, ccdf.eval(x))).collect()
}

/// `points` evenly spaced values covering `[lo, hi]`.
pub fn linear_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points == 0 {
        return Vec::new();
    }
    if points == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (points - 1) as f64;
    (0..points).map(|i| lo + step * i as f64).collect()
}

/// `points` log-spaced values covering `[lo, hi]`; requires `0 < lo <= hi`.
pub fn log_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "log grid requires 0 < lo <= hi");
    if points == 0 {
        return Vec::new();
    }
    if points == 1 {
        return vec![lo];
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    let step = (lhi - llo) / (points - 1) as f64;
    (0..points).map(|i| (llo + step * i as f64).exp()).collect()
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn eval_basics() {
        let c = Ccdf::from_samples([1.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.eval(0.5), 1.0);
        assert_eq!(c.eval(1.0), 0.75);
        assert_eq!(c.eval(2.0), 0.25);
        assert_eq!(c.eval(5.0), 0.0);
        assert_eq!(c.eval(10.0), 0.0);
    }

    #[test]
    fn empty_ccdf() {
        let c = Ccdf::from_samples(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.median(), None);
    }

    #[test]
    fn monotone_nonincreasing() {
        let c = Ccdf::from_samples((0..100).map(|i| (i as f64 * 17.0) % 31.0));
        let mut prev = 1.0;
        for (_, p) in c.linear_series(0.0, 31.0, 64) {
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn quantile_exceeding_is_inverse() {
        let c = Ccdf::from_samples((1..=100).map(|i| i as f64));
        let x = c.quantile_exceeding(0.1).unwrap();
        // About 10% of samples exceed x.
        let p = c.eval(x);
        assert!((p - 0.1).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn median_works() {
        let c = Ccdf::from_samples([1.0, 2.0, 3.0]);
        assert_eq!(c.median(), Some(2.0));
    }

    #[test]
    fn steps_deduplicate() {
        let c = Ccdf::from_samples([1.0, 1.0, 2.0]);
        let s = c.steps();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (1.0, 1.0 / 3.0));
        assert_eq!(s[1], (2.0, 0.0));
    }

    #[test]
    fn log_grid_spans_decades() {
        let g = log_grid(1e-3, 1e3, 7);
        assert_eq!(g.len(), 7);
        assert!((g[0] - 1e-3).abs() < 1e-12);
        assert!((g[6] - 1e3).abs() / 1e3 < 1e-9);
        assert!((g[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "log grid")]
    fn log_grid_rejects_nonpositive() {
        log_grid(0.0, 1.0, 4);
    }

    #[test]
    fn linear_grid_endpoints() {
        let g = linear_grid(2.0, 10.0, 5);
        assert_eq!(g, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(linear_grid(1.0, 2.0, 1), vec![1.0]);
        assert!(linear_grid(1.0, 2.0, 0).is_empty());
    }
}
