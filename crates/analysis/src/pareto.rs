//! Pareto tail fitting and heavy-tail diagnostics.
//!
//! §7 of the paper fits the per-job usage integrals to a Pareto
//! distribution `P(X > x) = (x_min / x)^α` by restricting to "large" jobs
//! (integral > 1 resource-hour, below the 99.99th percentile) and
//! regressing the empirical CCDF on log-log axes. It reports α = 0.69 (CPU)
//! and α = 0.72 (memory) with R² > 99%. This module implements that exact
//! procedure plus a Hill maximum-likelihood estimator for cross-checking.

use crate::ccdf::Ccdf;
use crate::percentile::{percentile_of_sorted, top_share};
use crate::regression::LinearFit;

/// A fitted Pareto tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFit {
    /// Tail index α (the negative log-log CCDF slope). α < 1 means the
    /// distribution has infinite mean in the limit — extremely heavy.
    pub alpha: f64,
    /// Goodness of fit of the log-log regression, in `[0, 1]`.
    pub r_squared: f64,
    /// Lower cutoff used for the fit (paper: 1 resource-hour).
    pub x_min: f64,
    /// Upper cutoff used for the fit (paper: the 99.99th percentile).
    pub x_max: f64,
    /// Number of samples inside `[x_min, x_max]`.
    pub n_tail: usize,
}

impl ParetoFit {
    /// Fits a Pareto tail by log-log CCDF regression, following §7.
    ///
    /// `samples` is the raw data; only values in `(x_min, x_max_percentile]`
    /// participate. The paper uses `x_min = 1.0` and
    /// `x_max_percentile = 99.99`.
    ///
    /// Returns `None` when fewer than [`MIN_TAIL_SAMPLES`](Self::MIN_TAIL_SAMPLES)
    /// samples fall in the fitting window.
    pub fn fit_ccdf_regression(samples: &[f64], x_min: f64, x_max_percentile: f64) -> Option<Self> {
        let mut finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        finite.sort_by(|a, b| a.total_cmp(b));
        let x_max = percentile_of_sorted(&finite, x_max_percentile);
        let tail: Vec<f64> = finite
            .iter()
            .copied()
            .filter(|&x| x > x_min && x <= x_max)
            .collect();
        if tail.len() < Self::MIN_TAIL_SAMPLES {
            return None;
        }
        let ccdf = Ccdf::from_samples(tail.iter().copied());
        // Regress log P(X > x) on log x at each distinct sample value,
        // skipping the final step where the CCDF reaches exactly zero.
        let points: Vec<(f64, f64)> = ccdf
            .steps()
            .into_iter()
            .filter(|&(x, p)| x > 0.0 && p > 0.0)
            .map(|(x, p)| (x.ln(), p.ln()))
            .collect();
        let fit = LinearFit::fit(&points)?;
        Some(ParetoFit {
            alpha: -fit.slope,
            r_squared: fit.r_squared,
            x_min,
            x_max,
            n_tail: tail.len(),
        })
    }

    /// Fits the tail index with the Hill maximum-likelihood estimator over
    /// samples greater than `x_min`:
    /// `α̂ = k / Σ ln(x_i / x_min)`.
    ///
    /// Returns `None` when no sample exceeds `x_min`.
    pub fn fit_hill(samples: &[f64], x_min: f64) -> Option<Self> {
        if x_min <= 0.0 {
            return None;
        }
        let tail: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|&x| x.is_finite() && x > x_min)
            .collect();
        if tail.is_empty() {
            return None;
        }
        let sum_log: f64 = tail.iter().map(|&x| (x / x_min).ln()).sum();
        if sum_log <= 0.0 {
            return None;
        }
        let alpha = tail.len() as f64 / sum_log;
        let x_max = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(ParetoFit {
            alpha,
            // The Hill estimator has no regression residual; report 1.0 and
            // let callers rely on the regression variant for fit quality.
            r_squared: 1.0,
            x_min,
            x_max,
            n_tail: tail.len(),
        })
    }

    /// Minimum number of in-window samples for a regression fit.
    pub const MIN_TAIL_SAMPLES: usize = 10;

    /// Theoretical CCDF of the fitted Pareto at `x >= x_min`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= self.x_min {
            1.0
        } else {
            (self.x_min / x).powf(self.alpha)
        }
    }
}

/// Load concentration in the largest jobs: the "hogs vs mice" statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailShare {
    /// Fraction of total load contributed by the largest 1% of jobs.
    pub top_1_percent: f64,
    /// Fraction of total load contributed by the largest 0.1% of jobs.
    pub top_01_percent: f64,
}

impl TailShare {
    /// Computes both tail shares; `None` on empty/degenerate input.
    ///
    /// # Examples
    ///
    /// ```
    /// use borg_analysis::pareto::TailShare;
    ///
    /// let mut xs = vec![0.001; 990];
    /// xs.extend(vec![100.0; 10]);
    /// let t = TailShare::compute(&xs).unwrap();
    /// assert!(t.top_1_percent > 0.99);
    /// ```
    pub fn compute(samples: &[f64]) -> Option<Self> {
        Some(TailShare {
            top_1_percent: top_share(samples, 1.0)?,
            top_01_percent: top_share(samples, 0.1)?,
        })
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    /// Deterministic Pareto(α) sample via inverse-CDF on a low-discrepancy
    /// sequence: x = x_min * u^(-1/α).
    fn pareto_samples(alpha: f64, x_min: f64, n: usize) -> Vec<f64> {
        (1..=n)
            .map(|i| {
                let u = (i as f64 - 0.5) / n as f64;
                x_min * u.powf(-1.0 / alpha)
            })
            .collect()
    }

    #[test]
    fn regression_recovers_alpha() {
        for &alpha in &[0.69, 0.72, 0.77, 1.5] {
            let xs = pareto_samples(alpha, 1.0, 20_000);
            let fit = ParetoFit::fit_ccdf_regression(&xs, 1.0, 99.99).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.08,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
            assert!(fit.r_squared > 0.98, "r2 = {}", fit.r_squared);
        }
    }

    #[test]
    fn hill_recovers_alpha() {
        for &alpha in &[0.7, 1.2, 2.5] {
            let xs = pareto_samples(alpha, 1.0, 50_000);
            let fit = ParetoFit::fit_hill(&xs, 1.0).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.05,
                "alpha {alpha}: hill {}",
                fit.alpha
            );
        }
    }

    #[test]
    fn too_few_tail_samples() {
        let xs = vec![0.5; 1000]; // nothing above x_min = 1
        assert!(ParetoFit::fit_ccdf_regression(&xs, 1.0, 99.99).is_none());
        assert!(ParetoFit::fit_hill(&xs, 1.0).is_none());
    }

    #[test]
    fn fitted_ccdf_shape() {
        let fit = ParetoFit {
            alpha: 1.0,
            r_squared: 1.0,
            x_min: 1.0,
            x_max: 100.0,
            n_tail: 100,
        };
        assert_eq!(fit.ccdf(0.5), 1.0);
        assert!((fit.ccdf(10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pareto_below_one_has_extreme_tail_share() {
        // α < 1 means the top 1% carries most of the mass, the paper's
        // headline "hogs" observation.
        let xs = pareto_samples(0.7, 0.001, 100_000);
        let t = TailShare::compute(&xs).unwrap();
        assert!(t.top_1_percent > 0.80, "top 1% = {}", t.top_1_percent);
        assert!(t.top_01_percent > 0.5, "top 0.1% = {}", t.top_01_percent);
        assert!(t.top_1_percent >= t.top_01_percent);
    }

    #[test]
    fn hill_rejects_bad_xmin() {
        assert!(ParetoFit::fit_hill(&[1.0, 2.0], 0.0).is_none());
    }
}
