//! Queueing-theory formulas used in §7.3 of the paper.
//!
//! The paper motivates hog/mouse isolation via the Pollaczek–Khinchine
//! formula for the M/G/1 queue: mean queueing delay is directly
//! proportional to `(C² + 1) / 2`, so a workload with C² ≈ 23 000 sees
//! queueing delays four orders of magnitude above an exponential workload
//! at the same load.

/// Mean queueing delay (in multiples of the mean service time) of an M/G/1
/// queue at load `rho` with squared coefficient of variation `c_squared`,
/// per Pollaczek–Khinchine:
///
/// `E[delay] = rho / (1 - rho) * (C² + 1) / 2`
///
/// Returns `None` when `rho` is outside `[0, 1)` or `c_squared` is
/// negative.
///
/// # Examples
///
/// ```
/// use borg_analysis::queueing::mg1_mean_queueing_delay;
///
/// // Exponential service (C² = 1) at 50% load waits exactly one mean
/// // service time on average.
/// assert_eq!(mg1_mean_queueing_delay(0.5, 1.0), Some(1.0));
/// ```
pub fn mg1_mean_queueing_delay(rho: f64, c_squared: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&rho) || c_squared < 0.0 || !c_squared.is_finite() {
        return None;
    }
    Some(rho / (1.0 - rho) * (c_squared + 1.0) / 2.0)
}

/// Mean queueing delay of an M/M/1 queue (`C² = 1`) at load `rho`, in
/// multiples of mean service time.
pub fn mm1_mean_queueing_delay(rho: f64) -> Option<f64> {
    mg1_mean_queueing_delay(rho, 1.0)
}

/// The load at which an M/G/1 queue with variability `c_squared` reaches a
/// target mean queueing delay (in mean-service-time units).
///
/// This inverts [`mg1_mean_queueing_delay`]; useful for the paper's point
/// that with C² ≈ 23 000 even a *tiny* load produces large delays.
///
/// Returns `None` for non-positive targets or negative `c_squared`.
pub fn mg1_load_for_delay(target_delay: f64, c_squared: f64) -> Option<f64> {
    if target_delay <= 0.0 || c_squared < 0.0 || !c_squared.is_finite() {
        return None;
    }
    let k = (c_squared + 1.0) / 2.0;
    // delay = rho/(1-rho) * k  =>  rho = delay / (delay + k)
    Some(target_delay / (target_delay + k))
}

/// Slowdown factor from serving a mixed hog/mouse workload in one queue
/// versus isolating the mice, under M/G/1 with the given per-class C².
///
/// Returns the ratio of mixed-queue delay to mice-only delay at identical
/// per-queue load `rho`. This quantifies §7.3's claim that isolating the
/// bottom 99% of jobs would let them see "little to no queueing".
pub fn isolation_benefit(rho: f64, c_squared_mixed: f64, c_squared_mice: f64) -> Option<f64> {
    let mixed = mg1_mean_queueing_delay(rho, c_squared_mixed)?;
    let mice = mg1_mean_queueing_delay(rho, c_squared_mice)?;
    if mice == 0.0 {
        return None;
    }
    Some(mixed / mice)
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn pk_formula_exponential() {
        assert_eq!(mg1_mean_queueing_delay(0.5, 1.0), Some(1.0));
        assert!((mg1_mean_queueing_delay(0.8, 1.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pk_deterministic_halves_delay() {
        // Deterministic service (C² = 0) has half the delay of exponential.
        let det = mg1_mean_queueing_delay(0.5, 0.0).unwrap();
        let exp = mg1_mean_queueing_delay(0.5, 1.0).unwrap();
        assert_eq!(det * 2.0, exp);
    }

    #[test]
    fn pk_heavy_tail_dominates() {
        // At the paper's C² = 23312, even 10% load waits thousands of mean
        // service times.
        let d = mg1_mean_queueing_delay(0.1, 23_312.0).unwrap();
        assert!(d > 1000.0, "delay = {d}");
    }

    #[test]
    fn pk_rejects_bad_inputs() {
        assert_eq!(mg1_mean_queueing_delay(1.0, 1.0), None);
        assert_eq!(mg1_mean_queueing_delay(-0.1, 1.0), None);
        assert_eq!(mg1_mean_queueing_delay(0.5, -1.0), None);
        assert_eq!(mg1_mean_queueing_delay(0.5, f64::NAN), None);
    }

    #[test]
    fn load_for_delay_inverts() {
        let c2 = 23_312.0;
        let rho = mg1_load_for_delay(10.0, c2).unwrap();
        let d = mg1_mean_queueing_delay(rho, c2).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
        // With enormous C², only a minuscule load keeps delay at 10 service
        // times.
        assert!(rho < 0.001, "rho = {rho}");
    }

    #[test]
    fn isolation_benefit_large() {
        // Mixed C² = 23k vs mice-only C² = 2: mice see ~4 orders of
        // magnitude less queueing when isolated.
        let b = isolation_benefit(0.5, 23_312.0, 2.0).unwrap();
        assert!(b > 5000.0, "benefit = {b}");
    }

    #[test]
    fn mm1_matches_mg1_with_c2_one() {
        for rho in [0.1, 0.5, 0.9] {
            assert_eq!(
                mm1_mean_queueing_delay(rho),
                mg1_mean_queueing_delay(rho, 1.0)
            );
        }
    }
}
