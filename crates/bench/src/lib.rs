#![warn(missing_docs)]

//! Criterion benchmarks for the borg2019 workspace.
//!
//! This crate exists only for its `benches/` targets:
//!
//! * `simulator` — cell-day simulation throughput, era comparison,
//!   best-fit scanning, and design-choice ablations;
//! * `query_engine` — filter/group-by/join/sort on trace-shaped tables;
//! * `analysis_kernels` — CCDF construction, Pareto fits, moments;
//! * `workload_gen` — integral sampling, arrival thinning, full workload
//!   generation, usage-process evaluation;
//! * `trace_ops` — validation, CSV writing, relational conversion, and
//!   the lifecycle state machine.
//!
//! Run with `cargo bench --workspace`.
