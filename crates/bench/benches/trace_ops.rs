//! Trace-layer throughput: validation, CSV round trips, state machines,
//! and relational-table conversion.

use borg_core::pipeline::{simulate_cell, SimScale};
use borg_core::tables;
use borg_trace::state::{EventType, StateMachine};
use borg_trace::validate::validate;
use borg_workload::cells::CellProfile;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_validate(c: &mut Criterion) {
    let outcome = simulate_cell(&CellProfile::cell_2019('e'), SimScale::Tiny, 5);
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.bench_function("validate_cell_2days", |b| {
        b.iter(|| validate(&outcome.trace));
    });
    group.bench_function("csv_write_cell_2days", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            borg_trace::csv::write_instance_events(&mut buf, &outcome.trace.instance_events)
                .unwrap();
            buf.len()
        });
    });
    group.bench_function("to_relational_tables", |b| {
        b.iter(|| tables::instance_events_table(&outcome.trace).unwrap());
    });
    group.bench_function("collections_summary", |b| {
        b.iter(|| outcome.trace.collections());
    });
    group.finish();
}

fn bench_state_machine(c: &mut Criterion) {
    use std::hint::black_box;
    c.bench_function("state_machine_lifecycle_x1000", |b| {
        b.iter(|| {
            let mut ok = 0;
            for i in 0..1000 {
                let mut sm = StateMachine::new();
                // black_box defeats constant folding of the fixed event
                // sequence.
                ok += sm.apply(black_box(EventType::Submit)).is_ok() as u32;
                ok += sm.apply(black_box(EventType::Schedule)).is_ok() as u32;
                ok += sm.apply(black_box(EventType::Evict)).is_ok() as u32;
                ok += sm.apply(black_box(EventType::Submit)).is_ok() as u32;
                ok += sm.apply(black_box(EventType::Schedule)).is_ok() as u32;
                ok += sm.apply(black_box(EventType::Finish)).is_ok() as u32;
                let _ = black_box(i);
            }
            black_box(ok)
        });
    });
}

criterion_group!(benches, bench_validate, bench_state_machine);
criterion_main!(benches);
