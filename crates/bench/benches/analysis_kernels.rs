//! Statistics-kernel throughput: CCDF, Pareto fits, moments, percentiles.

use borg_analysis::ccdf::Ccdf;
use borg_analysis::moments::Moments;
use borg_analysis::pareto::{ParetoFit, TailShare};
use borg_analysis::percentile::percentiles;
use borg_workload::dist::Sample;
use borg_workload::integral::IntegralModel;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn samples(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(1);
    let model = IntegralModel::model_2019();
    (0..n).map(|_| model.cpu.sample(&mut rng)).collect()
}

fn bench_ccdf(c: &mut Criterion) {
    let xs = samples(100_000);
    c.bench_function("ccdf_build_100k", |b| {
        b.iter(|| Ccdf::from_samples(xs.iter().copied()));
    });
    let ccdf = Ccdf::from_samples(xs.iter().copied());
    c.bench_function("ccdf_log_series_100k", |b| {
        b.iter(|| ccdf.log_series(1e-6, 1e5, 100));
    });
}

fn bench_pareto_fit(c: &mut Criterion) {
    let xs = samples(100_000);
    c.bench_function("pareto_regression_fit_100k", |b| {
        b.iter(|| ParetoFit::fit_ccdf_regression(&xs, 1.0, 99.99));
    });
    c.bench_function("pareto_hill_fit_100k", |b| {
        b.iter(|| ParetoFit::fit_hill(&xs, 1.0));
    });
    c.bench_function("tail_share_100k", |b| {
        b.iter(|| TailShare::compute(&xs));
    });
}

fn bench_moments(c: &mut Criterion) {
    let xs = samples(1_000_000);
    c.bench_function("streaming_moments_1m", |b| {
        b.iter(|| {
            let m: Moments = xs.iter().copied().collect();
            m.c_squared()
        });
    });
    c.bench_function("percentiles_1m", |b| {
        b.iter(|| percentiles(&xs, &[50.0, 90.0, 99.0, 99.9]));
    });
}

criterion_group!(benches, bench_ccdf, bench_pareto_fit, bench_moments);
criterion_main!(benches);
