//! Workload-synthesis throughput: distribution sampling, arrival
//! processes, and full cell-month workload generation.

use borg_trace::resources::Resources;
use borg_trace::time::Micros;
use borg_workload::arrival::DiurnalRate;
use borg_workload::cells::CellProfile;
use borg_workload::integral::IntegralModel;
use borg_workload::jobgen::{GenParams, JobGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_integral_sampling(c: &mut Criterion) {
    let model = IntegralModel::model_2019();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("integral_sample_10k", |b| {
        b.iter(|| model.sample_many(10_000, &mut rng));
    });
}

fn bench_arrivals(c: &mut Criterion) {
    let d = DiurnalRate::new(500.0, 0.3, 0.0);
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("diurnal_arrivals_week_at_500_per_hour", |b| {
        b.iter(|| d.sample_times(Micros::from_days(7), &mut rng));
    });
}

fn bench_full_workload(c: &mut Criterion) {
    let profile = CellProfile::cell_2019('d');
    let mut group = c.benchmark_group("generate_workload");
    group.sample_size(10);
    group.bench_function("cell_week", |b| {
        b.iter(|| {
            JobGenerator::new(
                &profile,
                GenParams {
                    capacity: Resources::new(24.0, 16.0),
                    job_rate_per_hour: 13.4,
                    horizon: Micros::from_days(7),
                    task_cap: Some(500),
                    seed: 1,
                },
            )
            .generate()
        });
    });
    group.finish();
}

fn bench_usage_process(c: &mut Criterion) {
    use borg_workload::usage_model::UsageProcess;
    let p = UsageProcess::new(Resources::new(0.1, 0.08), 0.2, 0.0, 0.1, 1.35, 9);
    c.bench_function("usage_window_eval_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000u64 {
                let s = Micros::from_minutes(i * 5);
                let e = Micros::from_minutes(i * 5 + 5);
                acc += p.average_over(s, e).cpu + p.peak_cpu_over(s, e);
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_integral_sampling,
    bench_arrivals,
    bench_full_workload,
    bench_usage_process
);
criterion_main!(benches);
