//! Simulator throughput: events per second of cell-month simulation at
//! several scales, plus the scheduler's placement path in isolation.

use borg_sim::{CellSim, SimConfig};
use borg_trace::time::Micros;
use borg_workload::cells::CellProfile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cell_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_cell_day");
    group.sample_size(10);
    for &(name, scale) in &[
        ("16_machines", 0.0013),
        ("24_machines", 0.002),
        ("48_machines", 0.004),
        ("512_machines", 512.0 / 12000.0),
        ("2048_machines", 2048.0 / 12000.0),
        // Paper-scale points unlocked by sharded placement (a 12k-machine
        // cell is scale 1.0): auto-sharding picks K from the host.
        ("4096_machines", 4096.0 / 12000.0),
        ("8192_machines", 8192.0 / 12000.0),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scale, |b, &scale| {
            let profile = CellProfile::cell_2019('d');
            let mut cfg = SimConfig::tiny_for_tests(1);
            cfg.scale = scale;
            cfg.horizon = Micros::from_days(1);
            cfg.snapshot_at = Micros::from_hours(12);
            b.iter(|| CellSim::run_cell(&profile, &cfg));
        });
    }
    // Telemetry overhead at the profiling scale: same cell-day with
    // span/counter/timing recording on (one blessed-clock read per
    // event). BENCH_simulator.json tracks enabled-vs-disabled; disabled
    // is the default `512_machines` row above (a single branch per
    // event).
    group.bench_function("512_machines_telemetry", |b| {
        let profile = CellProfile::cell_2019('d');
        let mut cfg = SimConfig::tiny_for_tests(1);
        cfg.scale = 512.0 / 12000.0;
        cfg.horizon = Micros::from_days(1);
        cfg.snapshot_at = Micros::from_hours(12);
        cfg.telemetry = true;
        b.iter(|| CellSim::run_cell(&profile, &cfg));
    });
    // The pre-index placement path at the ≥5x acceptance scale, for the
    // before/after numbers in BENCH_simulator.json.
    group.bench_function("512_machines_naive_scan", |b| {
        let profile = CellProfile::cell_2019('d');
        let mut cfg = SimConfig::tiny_for_tests(1);
        cfg.scale = 512.0 / 12000.0;
        cfg.horizon = Micros::from_days(1);
        cfg.snapshot_at = Micros::from_hours(12);
        cfg.use_placement_index = false;
        b.iter(|| CellSim::run_cell(&profile, &cfg));
    });
    group.finish();
}

/// Shard-count sweep at the acceptance scale: the same 2048-machine
/// cell-day under explicit K ∈ {1, 2, 4, 8}. Every K produces the same
/// trace (see `shard_equivalence.rs`); this group records what each K
/// costs on this host — including the expected *negative* result on
/// single-core machines, where the fan-out is pure overhead.
fn bench_shard_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_sweep_2048");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("K{k}")), &k, |b, &k| {
            let profile = CellProfile::cell_2019('d');
            let mut cfg = SimConfig::tiny_for_tests(1);
            cfg.scale = 2048.0 / 12000.0;
            cfg.horizon = Micros::from_days(1);
            cfg.snapshot_at = Micros::from_hours(12);
            cfg.placement_shards = Some(k);
            b.iter(|| CellSim::run_cell(&profile, &cfg));
        });
    }
    group.finish();
}

fn bench_2011_vs_2019(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_era_day");
    group.sample_size(10);
    for (name, profile) in [
        ("2011", CellProfile::cell_2011()),
        ("2019_cell_a", CellProfile::cell_2019('a')),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = SimConfig::tiny_for_tests(2);
            cfg.horizon = Micros::from_days(1);
            cfg.snapshot_at = Micros::from_hours(12);
            b.iter(|| CellSim::run_cell(&profile, &cfg));
        });
    }
    group.finish();
}

fn bench_machine_fit(c: &mut Criterion) {
    use borg_sim::machine::{Machine, Occupant};
    use borg_trace::machine::MachineId;
    use borg_trace::priority::Tier;
    use borg_trace::resources::Resources;
    let mut machines: Vec<Machine> = (0..100)
        .map(|i| Machine::new(MachineId(i), Resources::new(0.5, 0.5)))
        .collect();
    for (i, m) in machines.iter_mut().enumerate() {
        for k in 0..(i % 12) {
            m.add(Occupant {
                owner: k,
                index: 0,
                is_alloc_instance: false,
                tier: Tier::BestEffortBatch,
                request: Resources::new(0.05, 0.04),
            });
        }
    }
    c.bench_function("best_fit_scan_100_machines", |b| {
        let req = Resources::new(0.08, 0.06);
        b.iter(|| {
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in machines.iter().enumerate() {
                if let Some(s) = m.fit_score(req, Tier::Production) {
                    if best.is_none_or(|(_, bs)| s < bs) {
                        best = Some((i, s));
                    }
                }
            }
            best
        });
    });
}

fn bench_placement_path(c: &mut Criterion) {
    use borg_sim::machine::{Machine, Occupant};
    use borg_sim::PlacementIndex;
    use borg_trace::machine::MachineId;
    use borg_trace::priority::Tier;
    use borg_trace::resources::Resources;
    const FLEET: usize = 10_000;
    let mut machines: Vec<Machine> = (0..FLEET)
        .map(|i| Machine::new(MachineId(i as u32), Resources::new(0.5, 0.5)))
        .collect();
    for (i, m) in machines.iter_mut().enumerate() {
        for k in 0..(i % 12) {
            m.add(Occupant {
                owner: k,
                index: i,
                is_alloc_instance: false,
                tier: Tier::BestEffortBatch,
                request: Resources::new(0.05, 0.04),
            });
        }
    }
    let req = Resources::new(0.08, 0.06);
    let mut group = c.benchmark_group("placement_path");
    group.bench_function("naive_scan_10k", |b| {
        b.iter(|| {
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in machines.iter().enumerate() {
                if let Some(s) = m.fit_score(req, Tier::Production) {
                    if best.is_none_or(|(_, bs)| s < bs) {
                        best = Some((i, s));
                    }
                }
            }
            best
        });
    });
    group.bench_function("indexed_miss_10k", |b| {
        // Cycling through more shapes than the cache holds evicts every
        // entry before it is asked again, so each query pays the full
        // mirror scan plus a cache store: the cold path.
        let mut index = PlacementIndex::new(&machines, 7);
        let shapes: Vec<Resources> = (0..8192)
            .map(|i| Resources::new(0.06 + (i % 97) as f64 * 1e-6, 0.05 + (i / 97) as f64 * 1e-6))
            .collect();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % shapes.len();
            index.best_fit(&machines, shapes[k], Tier::Production)
        });
    });
    group.bench_function("indexed_churn_10k", |b| {
        // Steady churn: the winner mutates between queries, so each
        // lookup revalidates the entry against a one-record tail instead
        // of rescanning the fleet.
        let mut index = PlacementIndex::new(&machines, 7);
        b.iter(|| {
            let hit = index.best_fit(&machines, req, Tier::Production);
            if let Some((mi, _)) = hit {
                index.on_machine_changed(mi, &machines[mi]);
            }
            hit
        });
    });
    group.bench_function("indexed_cached_10k", |b| {
        // Steady state: an unchanged fleet answers from the score cache.
        let mut index = PlacementIndex::new(&machines, 7);
        index.best_fit(&machines, req, Tier::Production);
        b.iter(|| index.best_fit(&machines, req, Tier::Production));
    });
    group.finish();
}

/// One named configuration tweak.
type Variant = (&'static str, fn(&mut SimConfig));

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations_cell_day");
    group.sample_size(10);
    let profile = CellProfile::cell_2019('b');
    let base = {
        let mut cfg = SimConfig::tiny_for_tests(3);
        cfg.horizon = Micros::from_days(1);
        cfg.snapshot_at = Micros::from_hours(12);
        cfg
    };
    let variants: [Variant; 4] = [
        ("baseline", |_| {}),
        ("no_equivalence_classes", |c| {
            c.equivalence_class_speedup = 1.0
        }),
        ("no_batch_queue", |c| c.disable_batch_queue = true),
        ("gang_scheduling", |c| c.gang_scheduling = true),
    ];
    for (name, configure) in variants {
        let mut cfg = base.clone();
        configure(&mut cfg);
        group.bench_function(name, |b| {
            b.iter(|| CellSim::run_cell(&profile, &cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cell_day,
    bench_shard_sweep,
    bench_2011_vs_2019,
    bench_machine_fit,
    bench_placement_path,
    bench_ablations
);
criterion_main!(benches);
