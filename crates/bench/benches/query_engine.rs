//! Query-engine operator throughput on trace-shaped tables.

use borg_query::prelude::*;
use borg_query::Agg;
use criterion::{criterion_group, criterion_main, Criterion};

fn trace_shaped_table(rows: usize) -> Table {
    let mut t = Table::new(vec![
        ("time", DataType::Int),
        ("tier", DataType::Str),
        ("event", DataType::Str),
        ("cpu", DataType::Float),
    ]);
    let tiers = ["free", "beb", "mid", "prod"];
    let events = ["submit", "schedule", "finish", "kill"];
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(tiers[i % 4]),
            Value::str(events[(i / 3) % 4]),
            Value::Float((i % 100) as f64 / 100.0),
        ])
        .unwrap();
    }
    t
}

fn bench_filter(c: &mut Criterion) {
    let t = trace_shaped_table(100_000);
    c.bench_function("filter_100k_rows", |b| {
        b.iter(|| {
            Query::from(t.clone())
                .filter(
                    col("event")
                        .eq(lit("schedule"))
                        .and(col("cpu").gt(lit(0.5))),
                )
                .run()
                .unwrap()
        });
    });
}

fn bench_group_by(c: &mut Criterion) {
    let t = trace_shaped_table(100_000);
    c.bench_function("group_by_100k_rows", |b| {
        b.iter(|| {
            Query::from(t.clone())
                .group_by(
                    &["tier", "event"],
                    vec![
                        Agg::sum("cpu", "total"),
                        Agg::count_all("n"),
                        Agg::percentile("cpu", 99.0, "p99"),
                    ],
                )
                .run()
                .unwrap()
        });
    });
}

fn bench_join(c: &mut Criterion) {
    let left = trace_shaped_table(50_000);
    let mut right = Table::new(vec![("tier", DataType::Str), ("weight", DataType::Float)]);
    for (t, w) in [("free", 0.0), ("beb", 0.2), ("mid", 0.5), ("prod", 1.0)] {
        right
            .push_row(vec![Value::str(t), Value::Float(w)])
            .unwrap();
    }
    c.bench_function("join_50k_rows", |b| {
        b.iter(|| {
            Query::from(left.clone())
                .join(right.clone(), &["tier"], &["tier"])
                .run()
                .unwrap()
        });
    });
}

fn bench_group_by_1m(c: &mut Criterion) {
    // The acceptance benchmark for the vectorized engine: a 1M-row table
    // grouped on two string key columns.
    let t = trace_shaped_table(1_000_000);
    c.bench_function("group_by_1m_string_keys", |b| {
        b.iter(|| {
            Query::from(t.clone())
                .group_by(
                    &["tier", "event"],
                    vec![Agg::sum("cpu", "total"), Agg::count_all("n")],
                )
                .run()
                .unwrap()
        });
    });
}

fn bench_sort(c: &mut Criterion) {
    let t = trace_shaped_table(100_000);
    c.bench_function("sort_100k_rows", |b| {
        b.iter(|| {
            Query::from(t.clone())
                .sort_by_many(&[
                    ("tier", SortOrder::Ascending),
                    ("cpu", SortOrder::Descending),
                ])
                .run()
                .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_filter,
    bench_group_by,
    bench_group_by_1m,
    bench_join,
    bench_sort
);
criterion_main!(benches);
