//! Figure 10: job scheduling delay.
//!
//! The delay is measured from a job entering the *ready* state (after any
//! batch-queue wait) until its first task is running — deliberately
//! excluding batch queueing (§6.3). The paper finds medians of a few
//! seconds, improved for production since 2011, with a longer tail for
//! best-effort batch and mid-tier jobs because they have more tasks.

use borg_analysis::ccdf::Ccdf;
use borg_sim::CellOutcome;
use borg_trace::priority::Tier;
use std::collections::BTreeMap;

/// CCDF of per-job scheduling delays (seconds) for one cell.
pub fn delay_ccdf(outcome: &CellOutcome) -> Ccdf {
    Ccdf::from_samples(outcome.metrics.delays.iter().map(|d| d.delay_secs))
}

/// CCDF of delays pooled across cells.
pub fn pooled_delay_ccdf(outcomes: &[&CellOutcome]) -> Ccdf {
    Ccdf::from_samples(
        outcomes
            .iter()
            .flat_map(|o| o.metrics.delays.iter().map(|d| d.delay_secs)),
    )
}

/// Per-tier delay CCDFs pooled across cells (Figure 10b).
pub fn delay_ccdfs_by_tier(outcomes: &[&CellOutcome]) -> BTreeMap<Tier, Ccdf> {
    let mut by_tier: BTreeMap<Tier, Vec<f64>> = BTreeMap::new();
    for o in outcomes {
        for d in &o.metrics.delays {
            by_tier.entry(d.tier).or_default().push(d.delay_secs);
        }
    }
    by_tier
        .into_iter()
        .map(|(t, xs)| (t, Ccdf::from_samples(xs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcome() -> &'static borg_sim::CellOutcome {
        static O: OnceLock<borg_sim::CellOutcome> = OnceLock::new();
        O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('f'), SimScale::Tiny, 13))
    }

    #[test]
    fn median_delay_in_seconds() {
        let c = delay_ccdf(outcome());
        let m = c.median().unwrap();
        assert!((0.001..60.0).contains(&m), "median = {m}s");
    }

    #[test]
    fn per_tier_ccdfs_are_present_and_sane() {
        // Tier *ordering* claims (beb's long tail, §6.3) are asserted at
        // realistic scale by the experiment battery; a 2-day mini-cell is
        // too noisy for them. Here: every reporting tier produced delay
        // samples, and no delay is negative.
        let by_tier = delay_ccdfs_by_tier(&[outcome()]);
        for tier in [
            Tier::Free,
            Tier::BestEffortBatch,
            Tier::Mid,
            Tier::Production,
        ] {
            let ccdf = by_tier
                .get(&tier)
                .unwrap_or_else(|| panic!("no delays for {tier}"));
            assert!(!ccdf.is_empty());
            assert!(ccdf.samples().iter().all(|&d| d >= 0.0));
        }
    }

    #[test]
    fn pooled_matches_single() {
        let single = delay_ccdf(outcome());
        let pooled = pooled_delay_ccdf(&[outcome()]);
        assert_eq!(single.len(), pooled.len());
    }
}
