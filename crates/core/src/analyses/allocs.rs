//! §5.1: alloc-set statistics.
//!
//! The paper reports: 2% of collections are alloc sets; alloc sets carry
//! 20% of CPU allocations and 18% of RAM; 15% of jobs run inside an alloc
//! set, 95% of which are production; and in-alloc jobs use their memory
//! harder (73% average utilization vs 41%).

use borg_sim::CellOutcome;
use borg_trace::collection::CollectionType;
use borg_trace::priority::Tier;

/// The §5.1 statistics for one or more cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocStats {
    /// Fraction of collections that are alloc sets (paper: 0.02).
    pub alloc_set_collection_fraction: f64,
    /// Alloc sets' share of total CPU allocation (paper: 0.20).
    pub alloc_cpu_allocation_share: f64,
    /// Alloc sets' share of total memory allocation (paper: 0.18).
    pub alloc_mem_allocation_share: f64,
    /// Fraction of jobs marked to run in an alloc set (paper: 0.15).
    pub jobs_in_alloc_fraction: f64,
    /// Fraction of in-alloc jobs at production tier (paper: 0.95).
    pub in_alloc_prod_fraction: f64,
    /// Mean memory utilization (usage ÷ limit) of in-alloc tasks
    /// (paper: 0.73).
    pub mem_fill_in_alloc: f64,
    /// Mean memory utilization of other tasks (paper: 0.41).
    pub mem_fill_outside: f64,
}

/// Computes the §5.1 statistics across cells.
pub fn alloc_stats(outcomes: &[&CellOutcome]) -> AllocStats {
    let mut collections = 0usize;
    let mut alloc_sets = 0usize;
    let mut jobs = 0usize;
    let mut jobs_in_alloc = 0usize;
    let mut in_alloc_prod = 0usize;
    let mut alloc_cpu_hours = 0.0;
    let mut alloc_mem_hours = 0.0;
    let mut total_alloc_cpu_hours = 0.0;
    let mut total_alloc_mem_hours = 0.0;
    let mut fill_in = (0.0, 0u64);
    let mut fill_out = (0.0, 0u64);

    for outcome in outcomes {
        let infos = outcome.trace.collections();
        collections += infos.len();
        for info in infos.values() {
            match info.collection_type {
                CollectionType::AllocSet => alloc_sets += 1,
                CollectionType::Job => {
                    jobs += 1;
                    if info.alloc_collection_id.is_some() {
                        jobs_in_alloc += 1;
                        if info.priority.reporting_tier() == Tier::Production {
                            in_alloc_prod += 1;
                        }
                    }
                }
            }
        }
        alloc_cpu_hours += outcome.metrics.alloc_set_cpu_hours;
        alloc_mem_hours += outcome.metrics.alloc_set_mem_hours;
        for series in outcome.metrics.tiers.values() {
            // Bucket totals are resource·µs; convert to resource·hours.
            let us_per_hour = borg_trace::time::MICROS_PER_HOUR as f64;
            total_alloc_cpu_hours += series.alloc_cpu.totals().iter().sum::<f64>() / us_per_hour;
            total_alloc_mem_hours += series.alloc_mem.totals().iter().sum::<f64>() / us_per_hour;
        }
        fill_in.0 += outcome.metrics.fill_in_alloc.mem_ratio_sum;
        fill_in.1 += outcome.metrics.fill_in_alloc.count;
        fill_out.0 += outcome.metrics.fill_outside_alloc.mem_ratio_sum;
        fill_out.1 += outcome.metrics.fill_outside_alloc.count;
    }

    AllocStats {
        alloc_set_collection_fraction: ratio(alloc_sets, collections),
        alloc_cpu_allocation_share: safe_div(alloc_cpu_hours, total_alloc_cpu_hours),
        alloc_mem_allocation_share: safe_div(alloc_mem_hours, total_alloc_mem_hours),
        jobs_in_alloc_fraction: ratio(jobs_in_alloc, jobs),
        in_alloc_prod_fraction: ratio(in_alloc_prod, jobs_in_alloc),
        mem_fill_in_alloc: safe_div(fill_in.0, fill_in.1 as f64),
        mem_fill_outside: safe_div(fill_out.0, fill_out.1 as f64),
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn stats() -> AllocStats {
        static O: OnceLock<borg_sim::CellOutcome> = OnceLock::new();
        let o = O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 8));
        alloc_stats(&[o])
    }

    #[test]
    fn alloc_sets_small_fraction_of_collections() {
        let s = stats();
        assert!(
            (0.005..0.06).contains(&s.alloc_set_collection_fraction),
            "fraction = {}",
            s.alloc_set_collection_fraction
        );
    }

    #[test]
    fn in_alloc_jobs_mostly_production() {
        let s = stats();
        assert!(s.jobs_in_alloc_fraction > 0.03);
        assert!(
            s.in_alloc_prod_fraction > 0.7,
            "prod fraction = {}",
            s.in_alloc_prod_fraction
        );
    }

    #[test]
    fn in_alloc_memory_used_harder() {
        let s = stats();
        assert!(
            s.mem_fill_in_alloc > s.mem_fill_outside,
            "in {} vs out {}",
            s.mem_fill_in_alloc,
            s.mem_fill_outside
        );
    }

    #[test]
    fn alloc_allocation_share_positive() {
        let s = stats();
        assert!(s.alloc_cpu_allocation_share > 0.0);
        assert!(s.alloc_cpu_allocation_share < 0.8);
    }

    #[test]
    fn empty_input_is_zeroes() {
        let s = alloc_stats(&[]);
        assert_eq!(s.alloc_set_collection_fraction, 0.0);
        assert_eq!(s.mem_fill_in_alloc, 0.0);
    }
}
