//! Figure 7: the state-transition diagram with occurrence counts.

use borg_sim::CellOutcome;
use borg_trace::state::{EventType, InstanceState, TransitionCounts};

/// Combined collection + instance transition counts for a cell (the
/// paper's Figure 7 shows cell g).
pub fn combined_transitions(outcome: &CellOutcome) -> TransitionCounts {
    let mut t = outcome.metrics.collection_transitions.clone();
    t.merge(&outcome.metrics.instance_transitions);
    t
}

/// Renders the transition table, most frequent first.
pub fn render_transitions(counts: &TransitionCounts) -> String {
    let rows: Vec<Vec<String>> = counts
        .sorted()
        .into_iter()
        .map(|(from, ev, n)| {
            let from = from.map_or("(new)".to_string(), |s| s.to_string());
            let to = describe_target(ev);
            vec![from, ev.to_string(), to, n.to_string()]
        })
        .collect();
    crate::report::render_table(&["from", "event", "to", "count"], &rows)
}

fn describe_target(ev: EventType) -> String {
    match ev {
        EventType::Submit => InstanceState::Pending.to_string(),
        EventType::Queue => InstanceState::Queued.to_string(),
        EventType::Enable => InstanceState::Pending.to_string(),
        EventType::Schedule => InstanceState::Running.to_string(),
        EventType::Evict => "evicted".to_string(),
        EventType::Fail => "failed".to_string(),
        EventType::Finish => "finished".to_string(),
        EventType::Kill => "killed".to_string(),
        EventType::Lost => "lost".to_string(),
        EventType::UpdatePending | EventType::UpdateRunning => "(unchanged)".to_string(),
    }
}

/// The paper's observation: common transitions outnumber rare ones by
/// orders of magnitude. Returns `(most common count, least common
/// non-zero count)`.
pub fn spread(counts: &TransitionCounts) -> (u64, u64) {
    let sorted = counts.sorted();
    let max = sorted.first().map_or(0, |x| x.2);
    let min = sorted.iter().rfind(|x| x.2 > 0).map_or(0, |x| x.2);
    (max, min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn transitions_table_renders() {
        let o = simulate_cell(&CellProfile::cell_2019('g'), SimScale::Tiny, 10);
        let t = combined_transitions(&o);
        assert!(t.total() > 0);
        let s = render_transitions(&t);
        assert!(s.contains("submit"));
        assert!(s.contains("schedule"));
        let (max, min) = spread(&t);
        assert!(max >= min);
        assert!(max > 100);
    }
}
