//! §7.3: implications of heavy tails for queueing delay.
//!
//! The Pollaczek–Khinchine table: expected M/G/1 queueing delay (in mean
//! service times) at several loads, for the measured C² values of both
//! eras and for the "mice-only" workload with the hogs isolated.

use borg_analysis::queueing::{isolation_benefit, mg1_mean_queueing_delay};
use borg_analysis::Moments;

/// One row of the §7.3 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingRow {
    /// Offered load ρ.
    pub rho: f64,
    /// Delay with the full (hogs + mice) workload.
    pub delay_full: f64,
    /// Delay with the bottom-99% workload only.
    pub delay_mice: f64,
    /// The isolation benefit factor.
    pub benefit: f64,
}

/// Computes the §7.3 rows from per-job usage integrals: the full-workload
/// C² versus the C² of the bottom 99% ("mice") at the given loads.
pub fn queueing_rows(samples: &[f64], loads: &[f64]) -> Option<Vec<QueueingRow>> {
    let full: Moments = samples.iter().copied().collect();
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let cut = (sorted.len() as f64 * 0.99) as usize;
    let mice: Moments = sorted[..cut.max(1)].iter().copied().collect();
    let c2_full = full.c_squared();
    let c2_mice = mice.c_squared();
    loads
        .iter()
        .map(|&rho| {
            Some(QueueingRow {
                rho,
                delay_full: mg1_mean_queueing_delay(rho, c2_full)?,
                delay_mice: mg1_mean_queueing_delay(rho, c2_mice)?,
                benefit: isolation_benefit(rho, c2_full, c2_mice)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_workload::integral::IntegralModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn isolating_mice_removes_queueing() {
        let mut rng = StdRng::seed_from_u64(77);
        let xs: Vec<f64> = IntegralModel::model_2019()
            .sample_many(200_000, &mut rng)
            .iter()
            .map(|j| j.ncu_hours)
            .collect();
        let rows = queueing_rows(&xs, &[0.3, 0.5, 0.7]).unwrap();
        for row in &rows {
            assert!(
                row.benefit > 100.0,
                "isolating the mice should collapse their delay (benefit {})",
                row.benefit
            );
            assert!(row.delay_mice < row.delay_full);
        }
        // Delay grows with load.
        assert!(rows[2].delay_full > rows[0].delay_full);
    }

    #[test]
    fn invalid_load_rejected() {
        assert!(queueing_rows(&[1.0, 2.0, 3.0], &[1.5]).is_none());
    }
}
