//! Figure 11: tasks per job by tier.
//!
//! Two views are provided: the calibrated model itself (exact Figure 11
//! reproduction at any sample size, uncapped) and the distribution
//! measured from a simulated trace (whose tail is capped by the
//! simulation's `task_cap`; see DESIGN.md).

use borg_analysis::ccdf::Ccdf;
use borg_sim::CellOutcome;
use borg_trace::priority::Tier;
use borg_workload::jobmix::TaskCountModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Model-based tasks-per-job CCDF for one tier (uncapped).
pub fn model_ccdf(tier: Tier, samples: usize, seed: u64) -> Ccdf {
    let model = TaskCountModel::for_tier(tier);
    let mut rng = StdRng::seed_from_u64(seed);
    Ccdf::from_samples((0..samples).map(|_| f64::from(model.sample(&mut rng))))
}

/// Model-based CCDFs for the four reporting tiers.
pub fn model_ccdfs(samples: usize, seed: u64) -> BTreeMap<Tier, Ccdf> {
    Tier::REPORTING
        .iter()
        .map(|&t| (t, model_ccdf(t, samples, seed ^ t as u64)))
        .collect()
}

/// Tasks-per-job CCDFs per tier measured from a simulated trace.
pub fn trace_ccdfs(outcome: &CellOutcome) -> BTreeMap<Tier, Ccdf> {
    let mut instance_counts: BTreeMap<borg_trace::collection::CollectionId, u32> = BTreeMap::new();
    for ev in &outcome.trace.instance_events {
        if ev.event_type == borg_trace::state::EventType::Submit {
            let c = instance_counts
                .entry(ev.instance_id.collection)
                .or_insert(0);
            *c = (*c).max(ev.instance_id.index + 1);
        }
    }
    let infos = outcome.trace.collections();
    let mut by_tier: BTreeMap<Tier, Vec<f64>> = BTreeMap::new();
    for (id, count) in instance_counts {
        if let Some(info) = infos.get(&id) {
            if info.collection_type == borg_trace::collection::CollectionType::Job {
                by_tier
                    .entry(info.priority.reporting_tier())
                    .or_default()
                    .push(f64::from(count));
            }
        }
    }
    by_tier
        .into_iter()
        .map(|(t, xs)| (t, Ccdf::from_samples(xs)))
        .collect()
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn model_percentiles_match_figure_11() {
        let ccdfs = model_ccdfs(60_000, 3);
        let p = |t: Tier, q: f64| ccdfs[&t].quantile_exceeding(1.0 - q).unwrap();
        // 95th percentiles: 498 (beb), ~67 (mid), ~21 (free), ~3 (prod).
        assert!((250.0..900.0).contains(&p(Tier::BestEffortBatch, 0.95)));
        assert!((30.0..120.0).contains(&p(Tier::Mid, 0.95)));
        assert!((10.0..40.0).contains(&p(Tier::Free, 0.95)));
        assert!((2.0..7.0).contains(&p(Tier::Production, 0.95)));
        // 80th percentile: beb 25 tasks, others 1.
        assert!((12.0..45.0).contains(&p(Tier::BestEffortBatch, 0.80)));
        assert_eq!(p(Tier::Production, 0.80), 1.0);
    }

    #[test]
    fn trace_view_orders_tiers() {
        use crate::pipeline::{simulate_cell, SimScale};
        use borg_workload::cells::CellProfile;
        let o = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 14);
        let ccdfs = trace_ccdfs(&o);
        let beb = ccdfs[&Tier::BestEffortBatch]
            .quantile_exceeding(0.05)
            .unwrap();
        let prod = ccdfs[&Tier::Production].quantile_exceeding(0.05).unwrap();
        assert!(beb > prod, "beb p95 {beb} vs prod p95 {prod}");
    }
}
