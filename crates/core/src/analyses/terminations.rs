//! §5.2: termination statistics.
//!
//! The paper's key clarification: the "high failure rates" earlier studies
//! reported on the 2011 trace are mostly user-initiated kills, often via
//! parent-job cascades. It reports: only 3.2% of collections experience
//! any instance eviction; 96.6% of those are non-production; <0.2% of
//! production collections see an eviction; 52% of evicted collections see
//! exactly one; and 87% of jobs with parents end in a kill vs 41% without.

use borg_sim::CellOutcome;
use borg_trace::collection::CollectionType;
use borg_trace::priority::Tier;
use borg_trace::state::EventType;

/// The §5.2 statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminationStats {
    /// Fraction of collections with ≥1 instance eviction (paper: 0.032).
    pub collections_with_evictions: f64,
    /// Of those, the fraction below production tier (paper: 0.966).
    pub evicted_nonprod_fraction: f64,
    /// Fraction of production collections with any eviction (paper <0.002).
    pub prod_collections_evicted: f64,
    /// Of evicted collections, the share with exactly one eviction
    /// (paper: 0.52).
    pub single_eviction_fraction: f64,
    /// Kill rate of jobs with a parent (paper: 0.87).
    pub kill_rate_with_parent: f64,
    /// Kill rate of jobs without a parent (paper: 0.41).
    pub kill_rate_without_parent: f64,
    /// Share of terminal collection events that are kills.
    pub kill_share_of_terminations: f64,
}

/// Computes the §5.2 statistics across cells.
pub fn termination_stats(outcomes: &[&CellOutcome]) -> TerminationStats {
    let mut collections = 0u64;
    let mut evicted = 0u64;
    let mut evicted_nonprod = 0u64;
    let mut evicted_once = 0u64;
    let mut prod_collections = 0u64;
    let mut prod_evicted = 0u64;
    let mut with_parent = (0u64, 0u64); // (killed, total)
    let mut without_parent = (0u64, 0u64);
    let mut kills = 0u64;
    let mut terminals = 0u64;

    for outcome in outcomes {
        let infos = outcome.trace.collections();
        collections += infos.len() as u64;
        for info in infos.values() {
            let is_prod = info.priority.reporting_tier() == Tier::Production;
            if is_prod {
                prod_collections += 1;
            }
            let ev_count = outcome
                .metrics
                .evictions_by_collection
                .get(&info.id.0)
                .copied()
                .unwrap_or(0);
            if ev_count > 0 {
                evicted += 1;
                if !is_prod {
                    evicted_nonprod += 1;
                }
                if is_prod {
                    prod_evicted += 1;
                }
                if ev_count == 1 {
                    evicted_once += 1;
                }
            }
            if info.collection_type == CollectionType::Job {
                let killed = info.final_event == Some(EventType::Kill);
                if info.parent_id.is_some() {
                    with_parent.1 += 1;
                    with_parent.0 += killed as u64;
                } else {
                    without_parent.1 += 1;
                    without_parent.0 += killed as u64;
                }
            }
            if let Some(f) = info.final_event {
                terminals += 1;
                kills += (f == EventType::Kill) as u64;
            }
        }
    }

    let frac = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    TerminationStats {
        collections_with_evictions: frac(evicted, collections),
        evicted_nonprod_fraction: frac(evicted_nonprod, evicted),
        prod_collections_evicted: frac(prod_evicted, prod_collections),
        single_eviction_fraction: frac(evicted_once, evicted),
        kill_rate_with_parent: frac(with_parent.0, with_parent.1),
        kill_rate_without_parent: frac(without_parent.0, without_parent.1),
        kill_share_of_terminations: frac(kills, terminals),
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn stats() -> TerminationStats {
        static O: OnceLock<borg_sim::CellOutcome> = OnceLock::new();
        let o = O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('c'), SimScale::Tiny, 9));
        termination_stats(&[o])
    }

    #[test]
    fn evictions_are_rare_and_nonprod() {
        let s = stats();
        assert!(
            s.collections_with_evictions < 0.25,
            "evicted fraction = {}",
            s.collections_with_evictions
        );
        assert!(
            s.prod_collections_evicted <= s.collections_with_evictions,
            "production is protected"
        );
        if s.collections_with_evictions > 0.0 {
            assert!(s.evicted_nonprod_fraction > 0.5);
        }
    }

    #[test]
    fn parent_jobs_killed_more() {
        let s = stats();
        assert!(
            s.kill_rate_with_parent > s.kill_rate_without_parent,
            "with {} vs without {}",
            s.kill_rate_with_parent,
            s.kill_rate_without_parent
        );
        assert!(s.kill_rate_with_parent > 0.7);
        assert!((0.25..0.60).contains(&s.kill_rate_without_parent));
    }

    #[test]
    fn kills_dominate_terminations() {
        // §5.2: users initiate most kill events; kills are the most common
        // terminal by far once services and batch cancellations are
        // counted.
        let s = stats();
        assert!(s.kill_share_of_terminations > 0.3);
    }

    #[test]
    fn empty_is_zero() {
        let s = termination_stats(&[]);
        assert_eq!(s.collections_with_evictions, 0.0);
    }
}
