//! Figures 8 and 9: job and task submission rates.
//!
//! Figure 8 is the CCDF of jobs submitted per hour per cell (median
//! 885/hour in 2011 vs 3309 in 2019, a 3.7× growth). Figure 9 is the
//! CCDF of task submissions per hour, for new tasks and for all tasks
//! including rescheduled ones; the reschedule:new ratio grew from 0.66:1
//! to 2.26:1.

use borg_analysis::ccdf::Ccdf;
use borg_sim::CellOutcome;

/// CCDF of hourly job-submission counts for one cell, rescaled to
/// full-cell rates (counts ÷ scale) so eras with different simulation
/// scales compare directly.
pub fn job_rate_ccdf(outcome: &CellOutcome, scale: f64) -> Ccdf {
    Ccdf::from_samples(
        outcome
            .metrics
            .job_submissions
            .totals()
            .iter()
            .map(|&c| c / scale),
    )
}

/// CCDF of hourly job submissions aggregated across cells (each hour's
/// counts from all cells averaged, as the paper's "2019 - aggregate").
pub fn aggregate_job_rate_ccdf(outcomes: &[CellOutcome], scale: f64) -> Ccdf {
    if outcomes.is_empty() {
        return Ccdf::from_samples(std::iter::empty());
    }
    let hours = outcomes[0].metrics.job_submissions.totals().len();
    let mut avg = vec![0.0; hours];
    for o in outcomes {
        for (a, &c) in avg.iter_mut().zip(o.metrics.job_submissions.totals()) {
            *a += c / (scale * outcomes.len() as f64);
        }
    }
    Ccdf::from_samples(avg)
}

/// Task-rate CCDFs `(new, all)` for one cell, rescaled by `scale`.
pub fn task_rate_ccdfs(outcome: &CellOutcome, scale: f64) -> (Ccdf, Ccdf) {
    let new = Ccdf::from_samples(
        outcome
            .metrics
            .new_task_submissions
            .totals()
            .iter()
            .map(|&c| c / scale),
    );
    let all = Ccdf::from_samples(
        outcome
            .metrics
            .all_task_submissions
            .totals()
            .iter()
            .map(|&c| c / scale),
    );
    (new, all)
}

/// The reschedule churn ratio: `(all − new) / new` over the whole trace
/// (paper: 0.66 in 2011, 2.26 in 2019).
pub fn churn_ratio(outcome: &CellOutcome) -> f64 {
    let new: f64 = outcome.metrics.new_task_submissions.totals().iter().sum();
    let all: f64 = outcome.metrics.all_task_submissions.totals().iter().sum();
    if new == 0.0 {
        0.0
    } else {
        (all - new) / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_2011, simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcomes() -> &'static (borg_sim::CellOutcome, borg_sim::CellOutcome) {
        static O: OnceLock<(borg_sim::CellOutcome, borg_sim::CellOutcome)> = OnceLock::new();
        O.get_or_init(|| {
            (
                simulate_2011(SimScale::Tiny, 11),
                simulate_cell(&CellProfile::cell_2019('e'), SimScale::Tiny, 11),
            )
        })
    }

    #[test]
    fn job_rate_grew_between_eras() {
        let (y2011, y2019) = outcomes();
        let scale = SimScale::Tiny.config(0).scale;
        let m11 = job_rate_ccdf(y2011, scale).median().unwrap();
        let m19 = job_rate_ccdf(y2019, scale).median().unwrap();
        let growth = m19 / m11;
        // Paper: 3.7× median growth. Small scale + resident churn gives a
        // broad band.
        assert!(
            (1.5..8.0).contains(&growth),
            "median growth = {growth} ({m11} → {m19})"
        );
    }

    #[test]
    fn all_tasks_dominate_new_tasks() {
        let (_, y2019) = outcomes();
        let (new, all) = task_rate_ccdfs(y2019, 1.0);
        assert!(all.median().unwrap() >= new.median().unwrap());
        assert!(churn_ratio(y2019) > 0.0);
    }

    #[test]
    fn churn_higher_in_2019() {
        let (y2011, y2019) = outcomes();
        // Paper: 0.66 (2011) vs 2.26 (2019); directionally 2019 > 2011.
        assert!(
            churn_ratio(y2019) > churn_ratio(y2011),
            "2019 churn {} vs 2011 {}",
            churn_ratio(y2019),
            churn_ratio(y2011)
        );
    }

    #[test]
    fn aggregate_ccdf_smooths() {
        let (_, y2019) = outcomes();
        let agg = aggregate_job_rate_ccdf(std::slice::from_ref(y2019), 1.0);
        assert_eq!(agg.len(), y2019.metrics.job_submissions.totals().len());
        assert!(aggregate_job_rate_ccdf(&[], 1.0).is_empty());
    }
}
