//! Figure 13: correlation between compute and memory consumption.
//!
//! Jobs are bucketed into 1-NCU-hour bins and the median NMU-hours per
//! bin is plotted; the paper reports a Pearson correlation of 0.97 on the
//! bucketed medians.

use borg_analysis::correlation::{bucketed_median_correlation, bucketed_medians, Bucket};
use borg_workload::integral::IntegralModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Figure 13 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure13 {
    /// Median NMU-hours per 1-NCU-hour bucket.
    pub buckets: Vec<Bucket>,
    /// Pearson correlation of bucket centers vs bucket medians.
    pub pearson: f64,
}

/// Computes Figure 13 from the 2019 integral model.
pub fn figure13(samples: usize, seed: u64) -> Option<Figure13> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = IntegralModel::model_2019().sample_many(samples, &mut rng);
    let pairs: Vec<(f64, f64)> = jobs.iter().map(|j| (j.ncu_hours, j.nmu_hours)).collect();
    let buckets = bucketed_medians(&pairs, 1.0);
    let pearson = bucketed_median_correlation(&pairs, 1.0)?;
    Some(Figure13 { buckets, pearson })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_near_paper_value() {
        let f = figure13(300_000, 5).unwrap();
        assert!(f.pearson > 0.9, "pearson = {} (paper: 0.97)", f.pearson);
        assert!(f.buckets.len() > 10);
    }

    #[test]
    fn medians_grow_with_buckets() {
        let f = figure13(300_000, 6).unwrap();
        // The low buckets and high buckets differ by orders of magnitude.
        let first = f.buckets.first().unwrap().median_y;
        let last_populated = f
            .buckets
            .iter()
            .rev()
            .find(|b| b.count >= 1)
            .unwrap()
            .median_y;
        assert!(last_populated > first * 10.0);
    }
}
