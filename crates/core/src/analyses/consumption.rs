//! Table 2 and Figure 12: the distribution of per-job usage integrals.
//!
//! Statistical mode (see DESIGN.md): the quantities here — medians, means,
//! variances, percentiles, tail shares, C², and Pareto fits — are
//! computed over samples from the calibrated
//! [`borg_workload::integral::IntegralModel`], which is not
//! constrained by the mini-cell's physical capacity the way a bin-packed
//! simulation is.

use borg_analysis::ccdf::Ccdf;
use borg_analysis::moments::Moments;
use borg_analysis::pareto::{ParetoFit, TailShare};
use borg_analysis::percentile::percentiles;
use borg_workload::integral::IntegralModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One column of Table 2 (one era × one resource dimension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Column {
    /// Median resource-hours.
    pub median: f64,
    /// Mean resource-hours.
    pub mean: f64,
    /// Sample variance.
    pub variance: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Largest observed value.
    pub maximum: f64,
    /// Load share of the largest 1% of jobs.
    pub top_1_percent_load: f64,
    /// Load share of the largest 0.1% of jobs.
    pub top_01_percent_load: f64,
    /// Squared coefficient of variation.
    pub c_squared: f64,
    /// Fitted Pareto tail index (jobs with >1 resource-hour, below the
    /// 99.99th percentile, as in the paper).
    pub pareto_alpha: f64,
    /// Goodness of fit of the Pareto regression.
    pub r_squared: f64,
}

/// Computes a Table 2 column from raw per-job integrals.
pub fn column_from_samples(xs: &[f64]) -> Option<Table2Column> {
    let ps = percentiles(xs, &[50.0, 90.0, 99.0, 99.9])?;
    let m: Moments = xs.iter().copied().collect();
    let tail = TailShare::compute(xs)?;
    let fit = ParetoFit::fit_ccdf_regression(xs, 1.0, 99.99)?;
    Some(Table2Column {
        median: ps[0],
        mean: m.mean(),
        variance: m.sample_variance(),
        p90: ps[1],
        p99: ps[2],
        p999: ps[3],
        maximum: m.max(),
        top_1_percent_load: tail.top_1_percent,
        top_01_percent_load: tail.top_01_percent,
        c_squared: m.c_squared(),
        pareto_alpha: fit.alpha,
        r_squared: fit.r_squared,
    })
}

/// The full Table 2: `(2011 cpu, 2011 mem, 2019 cpu, 2019 mem)`.
pub fn table2(samples: usize, seed: u64) -> Option<[Table2Column; 4]> {
    let (cpu11, mem11) = era_samples(&IntegralModel::model_2011(), samples, seed);
    let (cpu19, mem19) = era_samples(&IntegralModel::model_2019(), samples, seed ^ 0x5eed);
    Some([
        column_from_samples(&cpu11)?,
        column_from_samples(&mem11)?,
        column_from_samples(&cpu19)?,
        column_from_samples(&mem19)?,
    ])
}

/// Samples `(cpu, mem)` integrals for one era.
pub fn era_samples(model: &IntegralModel, samples: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = model.sample_many(samples, &mut rng);
    (
        jobs.iter().map(|j| j.ncu_hours).collect(),
        jobs.iter().map(|j| j.nmu_hours).collect(),
    )
}

/// Figure 12: the log-log CCDF series of resource-hours for one sample
/// set, evaluated on a log grid from 1e-6 to 1e5.
pub fn figure12_series(xs: &[f64], points: usize) -> Vec<(f64, f64)> {
    Ccdf::from_samples(xs.iter().copied()).log_series(1e-6, 1e5, points)
}

/// Renders Table 2.
pub fn render_table2(cols: &[Table2Column; 4]) -> String {
    use crate::report::fmt;
    let row = |name: &str, f: &dyn Fn(&Table2Column) -> f64| {
        let mut r = vec![name.to_string()];
        r.extend(cols.iter().map(|c| fmt(f(c))));
        r
    };
    let rows = vec![
        row("median", &|c| c.median),
        row("mean", &|c| c.mean),
        row("variance", &|c| c.variance),
        row("90%ile", &|c| c.p90),
        row("99%ile", &|c| c.p99),
        row("99.9%ile", &|c| c.p999),
        row("maximum", &|c| c.maximum),
        row("top 1% jobs load", &|c| c.top_1_percent_load),
        row("top 0.1% jobs load", &|c| c.top_01_percent_load),
        row("C^2", &|c| c.c_squared),
        row("Pareto(alpha)", &|c| c.pareto_alpha),
        row("R^2", &|c| c.r_squared),
    ];
    crate::report::render_table(
        &[
            "measure",
            "2011 NCU-h",
            "2011 NMU-h",
            "2019 NCU-h",
            "2019 NMU-h",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn t2() -> &'static [Table2Column; 4] {
        static T: OnceLock<[Table2Column; 4]> = OnceLock::new();
        T.get_or_init(|| table2(200_000, 42).expect("table 2 computes"))
    }

    #[test]
    fn alphas_match_paper() {
        let [cpu11, _, cpu19, mem19] = t2();
        assert!(
            (cpu11.pareto_alpha - 0.77).abs() < 0.12,
            "2011 α = {}",
            cpu11.pareto_alpha
        );
        assert!(
            (cpu19.pareto_alpha - 0.69).abs() < 0.12,
            "2019 α = {}",
            cpu19.pareto_alpha
        );
        assert!(mem19.r_squared > 0.95);
    }

    #[test]
    fn c_squared_ordering_analytic() {
        // Sample C² estimates are dominated by a handful of extreme hog
        // draws, so the era ordering (2019 ≈ 23k above 2011 ≈ 8.4k) is
        // asserted on the models' closed-form moments.
        use borg_workload::integral::IntegralModel;
        let c19 = IntegralModel::model_2019().cpu.c_squared();
        let c11 = IntegralModel::model_2011().cpu.c_squared();
        assert!(c19 > c11, "2019 C² {c19} vs 2011 {c11}");
        assert!((5_000.0..100_000.0).contains(&c19), "2019 C² = {c19}");
        assert!((2_000.0..40_000.0).contains(&c11), "2011 C² = {c11}");
        // The empirical estimate lands in a broad band around it.
        let [_, _, cpu19, _] = t2();
        assert!(cpu19.c_squared > 1_000.0);
    }

    #[test]
    fn hogs_dominate() {
        let [_, _, cpu19, _] = t2();
        assert!(
            cpu19.top_1_percent_load > 0.97,
            "top 1% = {}",
            cpu19.top_1_percent_load
        );
        assert!(cpu19.top_01_percent_load > 0.8);
    }

    #[test]
    fn means_match_paper_scale() {
        use borg_workload::integral::IntegralModel;
        // Analytic model means sit at the paper's scale...
        let m19 = IntegralModel::model_2019().cpu.mean();
        let m11 = IntegralModel::model_2011().cpu.mean();
        assert!(
            (0.5..2.5).contains(&m19),
            "2019 cpu mean {m19} (paper: 1.19)"
        );
        assert!(
            (1.5..5.0).contains(&m11),
            "2011 cpu mean {m11} (paper: 3.0)"
        );
        assert!(m11 > m19, "2011 dominates 2019 stochastically");
        // ...and the sample estimates land within the hog-driven noise.
        let [cpu11, mem11, cpu19, mem19] = t2();
        assert!(
            (0.2..4.0).contains(&cpu19.mean),
            "2019 cpu sample mean {}",
            cpu19.mean
        );
        assert!(
            (0.8..8.0).contains(&cpu11.mean),
            "2011 cpu sample mean {}",
            cpu11.mean
        );
        assert!((mem11.mean / cpu11.mean) > 0.5);
        assert!(mem19.mean < cpu19.mean);
    }

    #[test]
    fn figure12_series_monotone_loglog() {
        let (cpu, _) = era_samples(&IntegralModel::model_2019(), 50_000, 1);
        let series = figure12_series(&cpu, 40);
        assert_eq!(series.len(), 40);
        let mut prev = f64::INFINITY;
        for &(_, p) in &series {
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn render_contains_rows() {
        let s = render_table2(t2());
        assert!(s.contains("C^2"));
        assert!(s.contains("Pareto(alpha)"));
    }
}
