//! Figure 1: frequency of machine shapes by CPU and memory capacity.

use borg_sim::CellOutcome;
use borg_trace::machine::count_shapes;

/// One bubble of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeBubble {
    /// Normalized CPU capacity.
    pub cpu: f64,
    /// Normalized memory capacity.
    pub mem: f64,
    /// Number of machines with this shape.
    pub count: usize,
}

/// Shape bubbles across cells, most common first.
pub fn shape_bubbles(outcomes: &[&CellOutcome]) -> Vec<ShapeBubble> {
    let mut bubbles: Vec<ShapeBubble> = Vec::new();
    for o in outcomes {
        for (shape, count) in count_shapes(&o.trace.machine_events) {
            if let Some(b) = bubbles.iter_mut().find(|b| {
                (b.cpu - shape.capacity.cpu).abs() < 1e-9
                    && (b.mem - shape.capacity.mem).abs() < 1e-9
            }) {
                b.count += count;
            } else {
                bubbles.push(ShapeBubble {
                    cpu: shape.capacity.cpu,
                    mem: shape.capacity.mem,
                    count,
                });
            }
        }
    }
    bubbles.sort_by_key(|b| std::cmp::Reverse(b.count));
    bubbles
}

/// Renders the bubble list.
pub fn render_shapes(bubbles: &[ShapeBubble]) -> String {
    let rows: Vec<Vec<String>> = bubbles
        .iter()
        .map(|b| {
            vec![
                format!("{:.2}", b.cpu),
                format!("{:.2}", b.mem),
                b.count.to_string(),
            ]
        })
        .collect();
    crate::report::render_table(&["cpu (NCU)", "memory (NMU)", "machines"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn bubbles_cover_fleet() {
        let o = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 15);
        let bubbles = shape_bubbles(&[&o]);
        assert!(!bubbles.is_empty());
        let total: usize = bubbles.iter().map(|b| b.count).sum();
        assert_eq!(total, o.trace.machine_count());
        // Sorted most-common-first.
        assert!(bubbles.windows(2).all(|w| w[0].count >= w[1].count));
        let s = render_shapes(&bubbles);
        assert!(s.contains("machines"));
    }
}
