//! Figures 2–5: resource usage and allocation by tier.
//!
//! Figure 2 plots the fraction of cell capacity *used* per hour per tier;
//! Figure 4 plots the fraction *allocated* (requested limits); Figures 3
//! and 5 are the whole-trace averages per cell. All four come straight
//! from the simulator's per-tier hour buckets, normalized by capacity.

use borg_sim::CellOutcome;
use borg_trace::priority::Tier;
use std::collections::BTreeMap;

/// Which quantity to chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// Observed usage (Figures 2 and 3).
    Usage,
    /// Requested limits (Figures 4 and 5).
    Allocation,
}

/// Which resource dimension to chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Normalized compute units.
    Cpu,
    /// Normalized memory units.
    Memory,
}

/// The hourly series for one cell: per tier, the fraction of cell
/// capacity per hour-long interval.
pub fn hourly_fractions(
    outcome: &CellOutcome,
    q: Quantity,
    d: Dimension,
) -> BTreeMap<Tier, Vec<f64>> {
    let capacity = match d {
        Dimension::Cpu => outcome.metrics.capacity.cpu,
        Dimension::Memory => outcome.metrics.capacity.mem,
    };
    outcome
        .metrics
        .tiers
        .iter()
        .map(|(&tier, series)| {
            let buckets = match (q, d) {
                (Quantity::Usage, Dimension::Cpu) => &series.usage_cpu,
                (Quantity::Usage, Dimension::Memory) => &series.usage_mem,
                (Quantity::Allocation, Dimension::Cpu) => &series.alloc_cpu,
                (Quantity::Allocation, Dimension::Memory) => &series.alloc_mem,
            };
            let fractions = buckets
                .average_rates()
                .into_iter()
                .map(|r| r / capacity)
                .collect();
            (tier, fractions)
        })
        .collect()
}

/// Averages the hourly fractions of several cells element-wise — the
/// "averaged across all 8 cells" panels of Figures 2b/2d/4b/4d.
pub fn averaged_hourly_fractions(
    outcomes: &[CellOutcome],
    q: Quantity,
    d: Dimension,
) -> BTreeMap<Tier, Vec<f64>> {
    let mut acc: BTreeMap<Tier, Vec<f64>> = BTreeMap::new();
    for outcome in outcomes {
        for (tier, series) in hourly_fractions(outcome, q, d) {
            let entry = acc.entry(tier).or_insert_with(|| vec![0.0; series.len()]);
            for (a, v) in entry.iter_mut().zip(&series) {
                *a += v / outcomes.len() as f64;
            }
        }
    }
    acc
}

/// Whole-trace average fraction per tier — one bar group of Figure 3/5.
pub fn average_fractions(outcome: &CellOutcome, q: Quantity, d: Dimension) -> BTreeMap<Tier, f64> {
    hourly_fractions(outcome, q, d)
        .into_iter()
        .map(|(tier, series)| {
            let mean = if series.is_empty() {
                0.0
            } else {
                series.iter().sum::<f64>() / series.len() as f64
            };
            (tier, mean)
        })
        .collect()
}

/// Renders a Figure 3/5-style table: one row per cell, one column per
/// tier plus the total.
pub fn render_per_cell_bars(
    labelled: &[(&str, &CellOutcome)],
    q: Quantity,
    d: Dimension,
) -> String {
    let mut rows = Vec::new();
    for (label, outcome) in labelled {
        let f = average_fractions(outcome, q, d);
        let total: f64 = f.values().sum();
        let cell = |t: Tier| f.get(&t).map_or("-".into(), |v| format!("{v:.3}"));
        rows.push(vec![
            label.to_string(),
            cell(Tier::Free),
            cell(Tier::BestEffortBatch),
            cell(Tier::Mid),
            cell(Tier::Production),
            format!("{total:.3}"),
        ]);
    }
    crate::report::render_table(&["cell", "free", "beb", "mid", "prod", "total"], &rows)
}

/// Diurnal strength and peak hour of a cell's total CPU usage: the
/// 24-hour Fourier component of the summed hourly fractions (§4.1's
/// "diurnal cycle in the loads"; cell g peaks at a shifted hour because
/// it is in Singapore).
pub fn diurnal_cycle(outcome: &CellOutcome) -> Option<(f64, f64)> {
    let per_tier = hourly_fractions(outcome, Quantity::Usage, Dimension::Cpu);
    let hours = per_tier.values().next()?.len();
    let mut total = vec![0.0; hours];
    for series in per_tier.values() {
        for (t, v) in total.iter_mut().zip(series) {
            *t += v;
        }
    }
    borg_analysis::timeseries::periodic_component(&total, 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcome() -> &'static CellOutcome {
        static O: OnceLock<CellOutcome> = OnceLock::new();
        O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 5))
    }

    #[test]
    fn hourly_series_cover_horizon() {
        let f = hourly_fractions(outcome(), Quantity::Usage, Dimension::Cpu);
        let hours = outcome().trace.horizon.as_hours_f64() as usize;
        for series in f.values() {
            assert_eq!(series.len(), hours);
            assert!(series.iter().all(|&v| (0.0..=2.5).contains(&v)));
        }
    }

    #[test]
    fn allocation_above_usage() {
        let u = average_fractions(outcome(), Quantity::Usage, Dimension::Cpu);
        let a = average_fractions(outcome(), Quantity::Allocation, Dimension::Cpu);
        let ut: f64 = u.values().sum();
        let at: f64 = a.values().sum();
        assert!(at > ut, "allocation {at} vs usage {ut}");
    }

    #[test]
    fn beb_dominates_cell_b() {
        // Cell b is the beb-heaviest cell (Figure 3).
        let u = average_fractions(outcome(), Quantity::Usage, Dimension::Cpu);
        assert!(u[&Tier::BestEffortBatch] > u[&Tier::Free]);
    }

    #[test]
    fn averaging_two_copies_is_identity() {
        let one = hourly_fractions(outcome(), Quantity::Usage, Dimension::Cpu);
        let outcomes = vec![simulate_cell(
            &CellProfile::cell_2019('b'),
            SimScale::Tiny,
            5,
        )];
        let avg = averaged_hourly_fractions(&outcomes, Quantity::Usage, Dimension::Cpu);
        for (tier, series) in &one {
            for (a, b) in series.iter().zip(&avg[tier]) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diurnal_cycle_visible_and_cell_g_shifted() {
        let (s, phase_b) = diurnal_cycle(outcome()).expect("cycle computes");
        assert!(s > 0.02, "diurnal strength = {s}");
        assert!((0.0..24.0).contains(&phase_b));
        // Cell g (Singapore) peaks at a different wall-clock hour.
        let g = simulate_cell(&CellProfile::cell_2019('g'), SimScale::Tiny, 5);
        let (_, phase_g) = diurnal_cycle(&g).expect("cycle computes");
        let shift = (phase_g - phase_b)
            .rem_euclid(24.0)
            .min((phase_b - phase_g).rem_euclid(24.0));
        assert!(shift > 2.0, "cell g phase shift = {shift}h");
    }

    #[test]
    fn render_has_all_columns() {
        let s = render_per_cell_bars(&[("b", outcome())], Quantity::Usage, Dimension::Cpu);
        assert!(s.contains("prod"));
        assert!(s.contains("total"));
    }
}
