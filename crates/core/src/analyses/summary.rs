//! Table 1: high-level comparison between the 2011 and 2019 traces.

use borg_sim::CellOutcome;
use borg_trace::machine::count_shapes;
use borg_trace::state::EventType;

/// One era's summary column of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct EraSummary {
    /// "May 2011" / "May 2019".
    pub label: String,
    /// Trace duration in days.
    pub duration_days: f64,
    /// Number of cells.
    pub cells: usize,
    /// Total machines across cells.
    pub machines: usize,
    /// Machines per cell.
    pub machines_per_cell: f64,
    /// Distinct hardware platforms.
    pub platforms: usize,
    /// Distinct machine shapes.
    pub machine_shapes: usize,
    /// Largest raw priority observed.
    pub max_priority: u16,
    /// Whether alloc sets appear.
    pub has_alloc_sets: bool,
    /// Whether parent-child dependencies appear.
    pub has_dependencies: bool,
    /// Whether batch queueing appears.
    pub has_batch_queueing: bool,
    /// Whether vertical scaling appears.
    pub has_vertical_scaling: bool,
}

/// Summarizes one era from its simulated cells.
pub fn summarize_era(label: &str, cells: &[&CellOutcome]) -> EraSummary {
    let mut machines = 0;
    let mut platforms = std::collections::BTreeSet::new();
    let mut shapes = 0;
    let mut max_priority = 0u16;
    let mut has_alloc_sets = false;
    let mut has_dependencies = false;
    let mut has_batch = false;
    let mut has_vs = false;
    let mut duration_days: f64 = 0.0;
    for cell in cells {
        machines += cell.trace.machine_count();
        duration_days = duration_days.max(cell.trace.horizon.as_days_f64());
        for ev in &cell.trace.machine_events {
            platforms.insert(ev.platform.0);
        }
        shapes = shapes.max(count_shapes(&cell.trace.machine_events).len());
        for ev in &cell.trace.collection_events {
            max_priority = max_priority.max(ev.priority.raw());
            has_alloc_sets |=
                ev.collection_type == borg_trace::collection::CollectionType::AllocSet;
            has_dependencies |= ev.parent_id.is_some();
            has_batch |= ev.event_type == EventType::Queue;
            has_vs |= ev.vertical_scaling != borg_trace::collection::VerticalScalingMode::Off;
        }
    }
    EraSummary {
        label: label.to_string(),
        duration_days,
        cells: cells.len(),
        machines,
        machines_per_cell: machines as f64 / cells.len().max(1) as f64,
        platforms: platforms.len(),
        machine_shapes: shapes,
        max_priority,
        has_alloc_sets,
        has_dependencies,
        has_batch_queueing: has_batch,
        has_vertical_scaling: has_vs,
    }
}

/// Renders Table 1 from the two eras.
pub fn render_table1(y2011: &EraSummary, y2019: &EraSummary) -> String {
    let yn = |b: bool| if b { "Y" } else { "-" }.to_string();
    let rows = vec![
        vec![
            "Duration (days)".to_string(),
            format!("{:.0}", y2011.duration_days),
            format!("{:.0}", y2019.duration_days),
        ],
        vec![
            "Cells".to_string(),
            y2011.cells.to_string(),
            y2019.cells.to_string(),
        ],
        vec![
            "Machines".to_string(),
            y2011.machines.to_string(),
            y2019.machines.to_string(),
        ],
        vec![
            "Machines per cell".to_string(),
            format!("{:.0}", y2011.machines_per_cell),
            format!("{:.0}", y2019.machines_per_cell),
        ],
        vec![
            "Hardware platforms".to_string(),
            y2011.platforms.to_string(),
            y2019.platforms.to_string(),
        ],
        vec![
            "Machine shapes".to_string(),
            y2011.machine_shapes.to_string(),
            y2019.machine_shapes.to_string(),
        ],
        vec![
            "Priority values".to_string(),
            format!(
                "0-{} (bands)",
                borg_trace::priority::PriorityBand2011::from_raw(
                    borg_trace::priority::Priority::new(y2011.max_priority)
                )
                .0
            ),
            format!("0-{}", y2019.max_priority),
        ],
        vec![
            "Alloc sets".to_string(),
            yn(y2011.has_alloc_sets),
            yn(y2019.has_alloc_sets),
        ],
        vec![
            "Job dependencies".to_string(),
            yn(y2011.has_dependencies),
            yn(y2019.has_dependencies),
        ],
        vec![
            "Batch queueing".to_string(),
            yn(y2011.has_batch_queueing),
            yn(y2019.has_batch_queueing),
        ],
        vec![
            "Vertical scaling".to_string(),
            yn(y2011.has_vertical_scaling),
            yn(y2019.has_vertical_scaling),
        ],
    ];
    crate::report::render_table(&["", &y2011.label, &y2019.label], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_2011, simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn table1_feature_asymmetry() {
        let y2011 = simulate_2011(SimScale::Tiny, 1);
        let a = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 2);
        let s11 = summarize_era("May 2011", &[&y2011]);
        let s19 = summarize_era("May 2019", &[&a]);
        assert!(!s11.has_alloc_sets && s19.has_alloc_sets);
        assert!(!s11.has_batch_queueing && s19.has_batch_queueing);
        assert!(!s11.has_vertical_scaling && s19.has_vertical_scaling);
        assert!(s19.has_dependencies);
        // 2011 priorities are quantized band values; 2019 exposes raw ones.
        assert!(s19.max_priority > 115);
        let rendered = render_table1(&s11, &s19);
        assert!(rendered.contains("Machines per cell"));
        assert!(rendered.contains("May 2019"));
    }
}
