//! Figure 6: CCDFs of per-machine CPU and memory utilization at one
//! snapshot window (the paper uses day 15, 1:00–1:05pm local time).

use borg_analysis::ccdf::Ccdf;
use borg_sim::CellOutcome;
use borg_trace::trace::Trace;

/// The CCDF of machine CPU utilization at the snapshot.
pub fn cpu_ccdf(outcome: &CellOutcome) -> Ccdf {
    Ccdf::from_samples(
        outcome
            .metrics
            .machine_snapshots
            .iter()
            .map(|s| s.cpu_utilization),
    )
}

/// The CCDF of machine memory utilization at the snapshot.
pub fn mem_ccdf(outcome: &CellOutcome) -> Ccdf {
    Ccdf::from_samples(
        outcome
            .metrics
            .machine_snapshots
            .iter()
            .map(|s| s.mem_utilization),
    )
}

/// Median machine utilization `(cpu, memory)` at the snapshot.
pub fn medians(outcome: &CellOutcome) -> (f64, f64) {
    (
        cpu_ccdf(outcome).median().unwrap_or(0.0),
        mem_ccdf(outcome).median().unwrap_or(0.0),
    )
}

/// Fraction of machines above a CPU-utilization threshold (the paper
/// remarks there are fewer machines above 80% in 2019 than in 2011).
pub fn fraction_above_cpu(outcome: &CellOutcome, threshold: f64) -> f64 {
    cpu_ccdf(outcome).eval(threshold)
}

/// CCDF of within-window CPU burstiness — the ratio of the 99th to the
/// 50th percentile of the 21-point CPU histograms the v3 trace attaches
/// to every usage sample (§3). A ratio near 1 is steady consumption; high
/// ratios are bursty tasks whose peaks drive the §8 slack metric.
pub fn burstiness_ccdf(trace: &Trace) -> Ccdf {
    Ccdf::from_samples(trace.usage.iter().filter_map(|u| {
        let p50 = f64::from(u.cpu_histogram.median());
        let p99 = f64::from(u.cpu_histogram.0[19]);
        if p50 > 1e-9 {
            Some(p99 / p50)
        } else {
            None
        }
    }))
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcome() -> &'static CellOutcome {
        static O: OnceLock<CellOutcome> = OnceLock::new();
        O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 6))
    }

    #[test]
    fn snapshot_ccdfs_nonempty_and_bounded() {
        let c = cpu_ccdf(outcome());
        assert!(!c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert!(c.eval(0.0) > 0.0, "some machine is doing work");
    }

    #[test]
    fn medians_in_range() {
        let (cpu, mem) = medians(outcome());
        assert!((0.0..=1.0).contains(&cpu));
        assert!((0.0..=1.0).contains(&mem));
    }

    #[test]
    fn fraction_above_monotone() {
        let lo = fraction_above_cpu(outcome(), 0.2);
        let hi = fraction_above_cpu(outcome(), 0.8);
        assert!(lo >= hi);
    }

    #[test]
    fn burstiness_at_least_one() {
        let c = burstiness_ccdf(&outcome().trace);
        assert!(!c.is_empty(), "usage samples carry histograms");
        // p99 ≥ p50 in a monotone histogram, so the ratio is ≥ 1.
        assert!(c.samples().iter().all(|&r| r >= 1.0 - 1e-6));
        // The workload's within-window peaks make some samples bursty.
        assert!(c.median().unwrap() > 1.0);
    }
}
