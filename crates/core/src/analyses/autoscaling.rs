//! Figure 14: peak NCU slack by vertical-scaling mode (§8).

use borg_analysis::ccdf::Ccdf;
use borg_sim::CellOutcome;
use borg_trace::collection::VerticalScalingMode;
use std::collections::BTreeMap;

/// Slack CCDFs per autopilot mode, pooled across cells; slack is in
/// percent (0–100) as in the paper's x-axis.
pub fn slack_ccdfs(outcomes: &[&CellOutcome]) -> BTreeMap<VerticalScalingMode, Ccdf> {
    let mut by_mode: BTreeMap<VerticalScalingMode, Vec<f64>> = BTreeMap::new();
    for o in outcomes {
        for s in &o.metrics.slack {
            by_mode.entry(s.mode).or_default().push(s.slack * 100.0);
        }
    }
    by_mode
        .into_iter()
        .map(|(mode, xs)| (mode, Ccdf::from_samples(xs)))
        .collect()
}

/// Median slack reduction of fully autoscaled jobs vs manual ones, in
/// percentage points (paper: "more than 25%").
pub fn full_vs_manual_median_reduction(outcomes: &[&CellOutcome]) -> Option<f64> {
    let ccdfs = slack_ccdfs(outcomes);
    let full = ccdfs.get(&VerticalScalingMode::Full)?.median()?;
    let off = ccdfs.get(&VerticalScalingMode::Off)?.median()?;
    Some(off - full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcome() -> &'static CellOutcome {
        static O: OnceLock<CellOutcome> = OnceLock::new();
        O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 21))
    }

    #[test]
    fn all_modes_present_in_2019() {
        let ccdfs = slack_ccdfs(&[outcome()]);
        assert_eq!(ccdfs.len(), 3);
    }

    #[test]
    fn full_autoscaling_wins() {
        let reduction = full_vs_manual_median_reduction(&[outcome()]).unwrap();
        assert!(
            reduction > 10.0,
            "median slack reduction = {reduction} points (paper: >25)"
        );
    }

    #[test]
    fn slack_in_percent_range() {
        for ccdf in slack_ccdfs(&[outcome()]).values() {
            for &x in ccdf.samples() {
                assert!((0.0..=100.0).contains(&x));
            }
        }
    }
}
