//! One module per table/figure of the paper's evaluation.

pub mod allocs;
pub mod autoscaling;
pub mod consumption;
pub mod correlation;
pub mod delay;
pub mod machine_util;
pub mod queueing;
pub mod shapes;
pub mod submission;
pub mod summary;
pub mod tasks_per_job;
pub mod terminations;
pub mod transitions;
pub mod utilization;
