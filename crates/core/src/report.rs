//! ASCII rendering of tables and series for the experiment binaries.

/// Renders a table with a header row, right-aligned columns.
///
/// # Examples
///
/// ```
/// use borg_core::report::render_table;
///
/// let s = render_table(
///     &["tier", "util"],
///     &[vec!["prod".into(), "0.30".into()], vec!["beb".into(), "0.20".into()]],
/// );
/// assert!(s.contains("prod"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:>w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&format!("{:>w$}  ", "-".repeat(widths[i]), w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Renders an `(x, y)` series as two aligned columns with a title.
pub fn render_series(title: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in series {
        out.push_str(&format!("{x:>14.6}  {y:>10.6}\n"));
    }
    out
}

/// Formats a float compactly (3 significant-ish decimals).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(&["a", "long-header"], &[vec!["xxxx".into(), "1".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].contains("xxxx"));
    }

    #[test]
    fn series_renders_rows() {
        let s = render_series("t", &[(1.0, 0.5), (2.0, 0.25)]);
        assert!(s.starts_with("# t\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(0.00001).contains('e'));
        assert_eq!(fmt(0.5), "0.5000");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.992), "99.2%");
    }
}
