#![warn(missing_docs)]

//! The paper pipeline: one module per analysis of
//! *Borg: the Next Generation* (EuroSys 2020).
//!
//! [`pipeline`] turns cell profiles into simulated traces;
//! [`analyses`] contains one module per table/figure, each returning
//! plain-data results that the experiment binaries print and
//! EXPERIMENTS.md records; [`report`] renders ASCII tables and series;
//! [`longitudinal`] packages the 2011-vs-2019 comparisons the paper
//! headlines.
//!
//! # Examples
//!
//! ```
//! use borg_core::pipeline::{simulate_cell, SimScale};
//! use borg_workload::cells::CellProfile;
//!
//! let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::tiny(), 7);
//! let util = outcome.metrics.average_cpu_util_by_tier();
//! assert!(!util.is_empty());
//! ```

pub mod analyses;
pub mod longitudinal;
pub mod pipeline;
pub mod report;
pub mod tables;
