//! The headline 2011-vs-2019 comparisons (§1's key observations).

use crate::analyses::submission;
use borg_sim::CellOutcome;
use borg_trace::priority::Tier;

/// The longitudinal summary the paper's introduction enumerates.
#[derive(Debug, Clone, PartialEq)]
pub struct Longitudinal {
    /// Median job-arrival growth factor (paper: 3.7×).
    pub job_rate_growth: f64,
    /// Median all-task submission growth factor (paper: ~3.6×).
    pub task_rate_growth: f64,
    /// Reschedule churn 2011 (paper: 0.66).
    pub churn_2011: f64,
    /// Reschedule churn 2019 (paper: 2.26).
    pub churn_2019: f64,
    /// Best-effort batch CPU share of capacity, 2011 → 2019 (the tier
    /// migration of §4).
    pub beb_share_2011: f64,
    /// Best-effort batch CPU share of capacity in 2019.
    pub beb_share_2019: f64,
    /// Free-tier CPU share, 2011.
    pub free_share_2011: f64,
    /// Free-tier CPU share, 2019.
    pub free_share_2019: f64,
}

/// Computes the longitudinal comparison. `scale_2011` and `scale_2019`
/// are the simulation scales, so rates normalize to full-cell numbers.
pub fn compare(
    y2011: &CellOutcome,
    y2019: &[CellOutcome],
    scale_2011: f64,
    scale_2019: f64,
) -> Longitudinal {
    let med = |ccdf: borg_analysis::ccdf::Ccdf| ccdf.median().unwrap_or(0.0);
    let m11 = med(submission::job_rate_ccdf(y2011, scale_2011));
    let m19: f64 = y2019
        .iter()
        .map(|o| med(submission::job_rate_ccdf(o, scale_2019)))
        .sum::<f64>()
        / y2019.len().max(1) as f64;

    let t11 = med(submission::task_rate_ccdfs(y2011, scale_2011).1);
    let t19: f64 = y2019
        .iter()
        .map(|o| med(submission::task_rate_ccdfs(o, scale_2019).1))
        .sum::<f64>()
        / y2019.len().max(1) as f64;

    let churn_2019 =
        y2019.iter().map(submission::churn_ratio).sum::<f64>() / y2019.len().max(1) as f64;

    let share = |o: &CellOutcome, tier: Tier| {
        o.metrics
            .average_cpu_util_by_tier()
            .get(&tier)
            .copied()
            .unwrap_or(0.0)
    };
    let avg_share =
        |tier: Tier| y2019.iter().map(|o| share(o, tier)).sum::<f64>() / y2019.len().max(1) as f64;

    Longitudinal {
        job_rate_growth: if m11 > 0.0 { m19 / m11 } else { 0.0 },
        task_rate_growth: if t11 > 0.0 { t19 / t11 } else { 0.0 },
        churn_2011: submission::churn_ratio(y2011),
        churn_2019,
        beb_share_2011: share(y2011, Tier::BestEffortBatch),
        beb_share_2019: avg_share(Tier::BestEffortBatch),
        free_share_2011: share(y2011, Tier::Free),
        free_share_2019: avg_share(Tier::Free),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_2011, simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn headline_directions_hold() {
        let scale = SimScale::Tiny.config(0).scale;
        let y2011 = simulate_2011(SimScale::Tiny, 1);
        let y2019 = vec![
            simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 2),
            simulate_cell(&CellProfile::cell_2019('c'), SimScale::Tiny, 3),
        ];
        let l = compare(&y2011, &y2019, scale, scale);
        assert!(
            l.job_rate_growth > 1.5,
            "job rate grew: {}",
            l.job_rate_growth
        );
        assert!(
            l.task_rate_growth > 1.0,
            "task rate grew: {}",
            l.task_rate_growth
        );
        assert!(l.churn_2019 > l.churn_2011, "churn grew");
        assert!(
            l.beb_share_2019 > l.beb_share_2011,
            "work moved into best-effort batch: 2011 {} vs 2019 {}",
            l.beb_share_2011,
            l.beb_share_2019
        );
        assert!(
            l.free_share_2019 < l.free_share_2011,
            "work moved out of the free tier"
        );
    }
}
