//! Trace tables as query-engine tables.
//!
//! The paper ran its analyses as SQL over BigQuery tables (§3, §9); this
//! module exposes the in-memory trace in the same relational form so
//! analyses can be written as [`borg_query`] pipelines. Each function
//! mirrors one of the published tables.

use borg_query::{DataType, QueryError, Table, Value};
use borg_trace::trace::Trace;

/// The collection-events table:
/// `time, collection_id, event, type, priority, tier, scheduler,
/// vertical_scaling, parent_id, alloc_collection_id, user_id`.
pub fn collection_events_table(trace: &Trace) -> Result<Table, QueryError> {
    let mut t = Table::new(vec![
        ("time", DataType::Int),
        ("collection_id", DataType::Int),
        ("event", DataType::Str),
        ("type", DataType::Str),
        ("priority", DataType::Int),
        ("tier", DataType::Str),
        ("scheduler", DataType::Str),
        ("vertical_scaling", DataType::Str),
        ("parent_id", DataType::Int),
        ("alloc_collection_id", DataType::Int),
        ("user_id", DataType::Int),
    ]);
    for ev in &trace.collection_events {
        t.push_row(vec![
            Value::Int(ev.time.as_micros() as i64),
            Value::Int(ev.collection_id.0 as i64),
            Value::str(ev.event_type.name()),
            Value::str(ev.collection_type.name()),
            Value::Int(i64::from(ev.priority.raw())),
            Value::str(ev.priority.reporting_tier().short_name()),
            Value::str(match ev.scheduler {
                borg_trace::collection::SchedulerKind::Default => "default",
                borg_trace::collection::SchedulerKind::Batch => "batch",
            }),
            Value::str(ev.vertical_scaling.name()),
            ev.parent_id.map_or(Value::Null, |p| Value::Int(p.0 as i64)),
            ev.alloc_collection_id
                .map_or(Value::Null, |p| Value::Int(p.0 as i64)),
            Value::Int(i64::from(ev.user_id.0)),
        ])?;
    }
    Ok(t)
}

/// The instance-events table:
/// `time, collection_id, instance_index, event, machine_id, cpu_request,
/// mem_request, priority, tier`.
pub fn instance_events_table(trace: &Trace) -> Result<Table, QueryError> {
    let mut t = Table::new(vec![
        ("time", DataType::Int),
        ("collection_id", DataType::Int),
        ("instance_index", DataType::Int),
        ("event", DataType::Str),
        ("machine_id", DataType::Int),
        ("cpu_request", DataType::Float),
        ("mem_request", DataType::Float),
        ("priority", DataType::Int),
        ("tier", DataType::Str),
    ]);
    for ev in &trace.instance_events {
        t.push_row(vec![
            Value::Int(ev.time.as_micros() as i64),
            Value::Int(ev.instance_id.collection.0 as i64),
            Value::Int(i64::from(ev.instance_id.index)),
            Value::str(ev.event_type.name()),
            ev.machine_id
                .map_or(Value::Null, |m| Value::Int(i64::from(m.0))),
            Value::Float(ev.request.cpu),
            Value::Float(ev.request.mem),
            Value::Int(i64::from(ev.priority.raw())),
            Value::str(ev.priority.reporting_tier().short_name()),
        ])?;
    }
    Ok(t)
}

/// The machine-events table: `time, machine_id, event, cpu, mem, platform`.
pub fn machine_events_table(trace: &Trace) -> Result<Table, QueryError> {
    let mut t = Table::new(vec![
        ("time", DataType::Int),
        ("machine_id", DataType::Int),
        ("event", DataType::Str),
        ("cpu", DataType::Float),
        ("mem", DataType::Float),
        ("platform", DataType::Int),
    ]);
    for ev in &trace.machine_events {
        t.push_row(vec![
            Value::Int(ev.time.as_micros() as i64),
            Value::Int(i64::from(ev.machine_id.0)),
            Value::str(match ev.event_type {
                borg_trace::machine::MachineEventType::Add => "add",
                borg_trace::machine::MachineEventType::Remove => "remove",
                borg_trace::machine::MachineEventType::Update => "update",
            }),
            Value::Float(ev.capacity.cpu),
            Value::Float(ev.capacity.mem),
            Value::Int(i64::from(ev.platform.0)),
        ])?;
    }
    Ok(t)
}

/// The instance-usage table: `start, end, collection_id, instance_index,
/// machine_id, avg_cpu, avg_mem, max_cpu, limit_cpu, limit_mem`.
pub fn usage_table(trace: &Trace) -> Result<Table, QueryError> {
    let mut t = Table::new(vec![
        ("start", DataType::Int),
        ("end", DataType::Int),
        ("collection_id", DataType::Int),
        ("instance_index", DataType::Int),
        ("machine_id", DataType::Int),
        ("avg_cpu", DataType::Float),
        ("avg_mem", DataType::Float),
        ("max_cpu", DataType::Float),
        ("limit_cpu", DataType::Float),
        ("limit_mem", DataType::Float),
    ]);
    for u in &trace.usage {
        t.push_row(vec![
            Value::Int(u.start.as_micros() as i64),
            Value::Int(u.end.as_micros() as i64),
            Value::Int(u.instance_id.collection.0 as i64),
            Value::Int(i64::from(u.instance_id.index)),
            Value::Int(i64::from(u.machine_id.0)),
            Value::Float(u.avg_usage.cpu),
            Value::Float(u.avg_usage.mem),
            Value::Float(u.max_usage.cpu),
            Value::Float(u.limit.cpu),
            Value::Float(u.limit.mem),
        ])?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{simulate_cell, SimScale};
    use borg_query::prelude::*;
    use borg_query::Agg;
    use borg_workload::cells::CellProfile;
    use std::sync::OnceLock;

    fn outcome() -> &'static borg_sim::CellOutcome {
        static O: OnceLock<borg_sim::CellOutcome> = OnceLock::new();
        O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 23))
    }

    #[test]
    fn collection_table_roundtrips_counts() {
        let t = collection_events_table(&outcome().trace).unwrap();
        assert_eq!(t.num_rows(), outcome().trace.collection_events.len());
    }

    #[test]
    fn sql_style_kill_rate_by_parent() {
        // The §5.2 analysis as a query pipeline: kill rate of jobs with
        // vs without parents.
        let t = collection_events_table(&outcome().trace).unwrap();
        let result = Query::from(t)
            .filter(col("type").eq(lit("job")).and(col("event").eq(lit("kill"))))
            .derive("has_parent", col("parent_id").is_null().not())
            .group_by(&["has_parent"], vec![Agg::count_all("kills")])
            .run()
            .unwrap();
        assert!(result.num_rows() >= 1);
        let total: i64 = (0..result.num_rows())
            .map(|r| result.value(r, "kills").unwrap().as_i64().unwrap())
            .sum();
        assert!(total > 0, "some jobs are killed");
    }

    #[test]
    fn sql_style_machine_capacity() {
        let t = machine_events_table(&outcome().trace).unwrap();
        let result = Query::from(t)
            .filter(col("event").eq(lit("add")))
            .group_by(
                &[],
                vec![Agg::sum("cpu", "total_cpu"), Agg::count_all("machines")],
            )
            .run()
            .unwrap();
        let total = result.value(0, "total_cpu").unwrap().as_f64().unwrap();
        let cap = outcome().trace.nominal_capacity().cpu;
        assert!((total - cap).abs() < 1e-9);
    }

    #[test]
    fn sql_style_usage_by_tier_joins() {
        // Join usage samples to their collections' tiers and aggregate —
        // the Figure 2 query in relational form.
        let usage = usage_table(&outcome().trace).unwrap();
        let coll = collection_events_table(&outcome().trace).unwrap();
        let submits = Query::from(coll)
            .filter(col("event").eq(lit("submit")))
            .select(&["collection_id", "tier"])
            .run()
            .unwrap();
        let result = Query::from(usage)
            .join(submits, &["collection_id"], &["collection_id"])
            .group_by(&["tier"], vec![Agg::sum("avg_cpu", "cpu")])
            .sort_by("cpu", SortOrder::Descending)
            .run()
            .unwrap();
        assert!(result.num_rows() >= 2);
        // Cell b: best-effort batch leads CPU usage among sampled records
        // or at least appears.
        let tiers: Vec<String> = (0..result.num_rows())
            .map(|r| result.value(r, "tier").unwrap().to_string())
            .collect();
        assert!(tiers.iter().any(|t| t == "beb"));
    }
}
