//! Trace-generation pipeline: profiles → simulated cell-months.

use borg_sim::{CellOutcome, CellSim, SimConfig};
use borg_trace::time::Micros;
use borg_workload::cells::CellProfile;

/// Named simulation scales, wrapping [`SimConfig`] presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimScale {
    /// ~25 machines, 2 days: unit/integration tests and doctests.
    Tiny,
    /// ~48 machines, 7 days: fast experiment previews.
    Small,
    /// ~60 machines, 31 days: the EXPERIMENTS.md configuration.
    Month,
}

impl SimScale {
    /// The test scale.
    pub fn tiny() -> SimScale {
        SimScale::Tiny
    }

    /// Builds the corresponding [`SimConfig`] with the given seed.
    pub fn config(self, seed: u64) -> SimConfig {
        match self {
            SimScale::Tiny => SimConfig::tiny_for_tests(seed),
            SimScale::Small => {
                let mut cfg = SimConfig::month(seed);
                cfg.scale = 0.004;
                cfg.horizon = Micros::from_days(7);
                cfg.snapshot_at = Micros::from_days(3) + Micros::from_hours(13);
                cfg
            }
            SimScale::Month => SimConfig::month(seed),
        }
    }
}

/// Simulates one cell at the given scale.
pub fn simulate_cell(profile: &CellProfile, scale: SimScale, seed: u64) -> CellOutcome {
    CellSim::run_cell(profile, &scale.config(seed))
}

/// Simulates the 2011 cell.
pub fn simulate_2011(scale: SimScale, seed: u64) -> CellOutcome {
    simulate_cell(&CellProfile::cell_2011(), scale, seed)
}

/// Simulates all eight 2019 cells in parallel.
pub fn simulate_2019_all(scale: SimScale, seed: u64) -> Vec<CellOutcome> {
    let profiles = CellProfile::all_2019();
    borg_sim::run_cells_parallel(&profiles, &scale.config(seed))
}

/// Simulates both eras: `(the 2011 cell, the eight 2019 cells)`.
pub fn simulate_both_eras(scale: SimScale, seed: u64) -> (CellOutcome, Vec<CellOutcome>) {
    let y2011 = simulate_2011(scale, seed ^ 0x2011);
    let y2019 = simulate_2019_all(scale, seed);
    (y2011, y2019)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_simulation_runs() {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        assert!(!outcome.trace.collection_events.is_empty());
        assert!(!outcome.trace.instance_events.is_empty());
        assert_eq!(outcome.metrics.cell_name, "a");
    }

    #[test]
    fn scales_build_valid_configs() {
        for scale in [SimScale::Tiny, SimScale::Small, SimScale::Month] {
            scale.config(1).validate();
        }
    }

    #[test]
    fn era_2011_runs() {
        let outcome = simulate_2011(SimScale::Tiny, 3);
        assert_eq!(outcome.metrics.cell_name, "2011");
    }
}
