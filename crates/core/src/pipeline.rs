//! Trace-generation pipeline: profiles → simulated cell-months, plus the
//! repairing ingestion path for reading traces back from disk.

use borg_sim::{CellOutcome, CellSim, FaultConfig, SimConfig};
use borg_telemetry::{Plane, Telemetry};
use borg_trace::csv::Quarantine;
use borg_trace::repair::{repair, RepairReport};
use borg_trace::time::Micros;
use borg_trace::trace::Trace;
use borg_workload::cells::CellProfile;

/// Named simulation scales, wrapping [`SimConfig`] presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimScale {
    /// ~25 machines, 2 days: unit/integration tests and doctests.
    Tiny,
    /// ~48 machines, 7 days: fast experiment previews.
    Small,
    /// ~60 machines, 31 days: the EXPERIMENTS.md configuration.
    Month,
}

impl SimScale {
    /// The test scale.
    pub fn tiny() -> SimScale {
        SimScale::Tiny
    }

    /// Builds the corresponding [`SimConfig`] with the given seed.
    pub fn config(self, seed: u64) -> SimConfig {
        match self {
            SimScale::Tiny => SimConfig::tiny_for_tests(seed),
            SimScale::Small => {
                let mut cfg = SimConfig::month(seed);
                cfg.scale = 0.004;
                cfg.horizon = Micros::from_days(7);
                cfg.snapshot_at = Micros::from_days(3) + Micros::from_hours(13);
                cfg
            }
            SimScale::Month => SimConfig::month(seed),
        }
    }
}

/// Simulates one cell at the given scale.
pub fn simulate_cell(profile: &CellProfile, scale: SimScale, seed: u64) -> CellOutcome {
    CellSim::run_cell(profile, &scale.config(seed))
}

/// [`simulate_cell`] with telemetry recording switched on: identical
/// trace and metrics (telemetry reads nothing back into the
/// simulation), plus a populated `CellOutcome::telemetry` snapshot.
pub fn simulate_cell_profiled(profile: &CellProfile, scale: SimScale, seed: u64) -> CellOutcome {
    let cfg = SimConfig {
        telemetry: true,
        ..scale.config(seed)
    };
    CellSim::run_cell(profile, &cfg)
}

/// Simulates the 2011 cell.
pub fn simulate_2011(scale: SimScale, seed: u64) -> CellOutcome {
    simulate_cell(&CellProfile::cell_2011(), scale, seed)
}

/// Simulates all eight 2019 cells in parallel.
pub fn simulate_2019_all(scale: SimScale, seed: u64) -> Vec<CellOutcome> {
    let profiles = CellProfile::all_2019();
    borg_sim::run_cells_parallel(&profiles, &scale.config(seed))
}

/// Simulates both eras: `(the 2011 cell, the eight 2019 cells)`.
pub fn simulate_both_eras(scale: SimScale, seed: u64) -> (CellOutcome, Vec<CellOutcome>) {
    let y2011 = simulate_2011(scale, seed ^ 0x2011);
    let y2019 = simulate_2019_all(scale, seed);
    (y2011, y2019)
}

/// Simulates one cell with its profile's failure model switched on.
///
/// Identical to [`simulate_cell`] except `cfg.faults` is populated from
/// the profile's [`borg_workload::cells::FailureModel`], so machines
/// fail, tasks are evicted or lost, and the emitted trace carries the
/// corresponding `Remove`/`Add` machine events.
pub fn simulate_cell_faulty(profile: &CellProfile, scale: SimScale, seed: u64) -> CellOutcome {
    let cfg = SimConfig {
        faults: Some(FaultConfig::from_model(&profile.failure_model)),
        ..scale.config(seed)
    };
    CellSim::run_cell(profile, &cfg)
}

/// What the ingestion pipeline had to do to a trace read from disk:
/// everything the lenient reader quarantined plus everything
/// [`repair`] changed, against the total row count actually ingested.
///
/// Analyses that consume a loaded trace attach [`DataQuality::annotation`]
/// to their reports so a repaired trace is never mistaken for a clean one.
#[derive(Debug, Clone, Default)]
pub struct DataQuality {
    /// Lines and tables the lenient reader refused to ingest.
    pub quarantine: Quarantine,
    /// Rows deduplicated, synthesized, or dropped by [`repair`].
    pub repair: RepairReport,
    /// Rows across all four tables after ingestion and repair.
    pub rows_ingested: u64,
}

impl DataQuality {
    /// True when nothing was quarantined and repair was a no-op.
    pub fn is_pristine(&self) -> bool {
        self.quarantine.is_clean() && self.repair.is_noop()
    }

    /// Fraction of the final row count that was touched by quarantine
    /// or repair (0.0 for a pristine load; can exceed 1.0 only for a
    /// pathologically small trace).
    pub fn fraction_affected(&self) -> f64 {
        if self.rows_ingested == 0 {
            return if self.is_pristine() { 0.0 } else { 1.0 };
        }
        let touched = self.quarantine.total_lines() + self.repair.total_actions();
        touched as f64 / self.rows_ingested as f64
    }

    /// One-line annotation for reports, e.g.
    /// `data quality: 2.3% of 14210 rows affected; quarantined 120 line(s)
    /// [...]; repaired: ...`.
    pub fn annotation(&self) -> String {
        if self.is_pristine() {
            return "data quality: pristine (no quarantine, no repairs)".to_string();
        }
        format!(
            "data quality: {:.1}% of {} rows affected; {}; {}",
            self.fraction_affected() * 100.0,
            self.rows_ingested,
            self.quarantine.summary(),
            self.repair.summary()
        )
    }

    /// Re-exports the quarantine and repair tallies as telemetry
    /// counters (`ingest.quarantine.*`, `ingest.repair.*`).
    /// Deterministic plane: both are pure functions of the bytes read.
    /// Zero tallies are skipped, so a pristine load contributes only
    /// `ingest.rows`.
    pub fn export_metrics(&self, tel: &mut Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.count("ingest.rows", Plane::Deterministic, self.rows_ingested);
        for (file, &n) in &self.quarantine.line_counts {
            tel.count(
                &format!("ingest.quarantine.{}", file_slug(file)),
                Plane::Deterministic,
                n,
            );
        }
        if !self.quarantine.table_errors.is_empty() {
            tel.count(
                "ingest.quarantine.table_errors",
                Plane::Deterministic,
                self.quarantine.table_errors.len() as u64,
            );
        }
        let tables = [
            ("machine_events", &self.repair.machine_events),
            ("collection_events", &self.repair.collection_events),
            ("instance_events", &self.repair.instance_events),
            ("usage", &self.repair.usage),
        ];
        for (table, r) in tables {
            for (kind, v) in [
                ("deduped", r.deduped),
                ("synthesized", r.synthesized),
                ("dropped", r.dropped),
            ] {
                if v > 0 {
                    tel.count(
                        &format!("ingest.repair.{table}.{kind}"),
                        Plane::Deterministic,
                        v,
                    );
                }
            }
        }
        for (name, v) in [
            ("lost_inserted", self.repair.lost_inserted),
            ("submits_backfilled", self.repair.submits_backfilled),
            ("machines_backfilled", self.repair.machines_backfilled),
            ("windows_swapped", self.repair.windows_swapped),
            ("histograms_sorted", self.repair.histograms_sorted),
        ] {
            if v > 0 {
                tel.count(&format!("ingest.repair.{name}"), Plane::Deterministic, v);
            }
        }
    }

    /// Re-exports the same tallies on the **engine** plane under
    /// `trace.quarantine.*` / `trace.repair.*`, for long-running
    /// services (borg-serve) whose operational dashboards live on the
    /// engine plane: a service load of a damaged epoch should be
    /// visible next to its latency histograms, without touching the
    /// deterministic plane that result-digest tests compare.
    pub fn export_engine_metrics(&self, tel: &mut Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.count("trace.rows_ingested", Plane::Engine, self.rows_ingested);
        tel.count(
            "trace.quarantine.lines",
            Plane::Engine,
            self.quarantine.total_lines(),
        );
        tel.count(
            "trace.quarantine.table_errors",
            Plane::Engine,
            self.quarantine.table_errors.len() as u64,
        );
        tel.count(
            "trace.repair.actions",
            Plane::Engine,
            self.repair.total_actions(),
        );
        for (table, r) in [
            ("machine_events", &self.repair.machine_events),
            ("collection_events", &self.repair.collection_events),
            ("instance_events", &self.repair.instance_events),
            ("usage", &self.repair.usage),
        ] {
            if r.total() > 0 {
                tel.count(
                    &format!("trace.repair.{table}.actions"),
                    Plane::Engine,
                    r.total(),
                );
            }
        }
    }
}

/// `machine_events.csv` → `machine_events`, for metric-name embedding.
fn file_slug(file: &str) -> &str {
    file.strip_suffix(".csv").unwrap_or(file)
}

/// Loads a trace directory through the repairing ingestion pipeline:
/// lenient per-line reads (malformed lines quarantined, not fatal),
/// then [`repair`] to restore lifecycle invariants, returning the
/// repaired trace alongside its [`DataQuality`] record.
pub fn load_trace_dir(dir: &std::path::Path) -> (Trace, DataQuality) {
    load_trace_dir_with(dir, &mut Telemetry::disabled())
}

/// [`load_trace_dir`] with per-stage telemetry: `ingest` (lenient
/// reads) and `repair` spans under `core.load_trace_dir`, plus the
/// [`DataQuality`] tallies re-exported as counters.
pub fn load_trace_dir_with(dir: &std::path::Path, tel: &mut Telemetry) -> (Trace, DataQuality) {
    let load_span = tel.span_enter("core.load_trace_dir");
    let ingest_span = tel.span_enter("ingest");
    let (mut trace, quarantine) = borg_trace::csv::read_trace_dir_lenient(dir);
    tel.span_exit(ingest_span);
    let repair_span = tel.span_enter("repair");
    let report = repair(&mut trace);
    tel.span_exit(repair_span);
    let rows = trace.machine_events.len()
        + trace.collection_events.len()
        + trace.instance_events.len()
        + trace.usage.len();
    let quality = DataQuality {
        quarantine,
        repair: report,
        rows_ingested: rows as u64,
    };
    quality.export_metrics(tel);
    tel.span_exit(load_span);
    (trace, quality)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_simulation_runs() {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        assert!(!outcome.trace.collection_events.is_empty());
        assert!(!outcome.trace.instance_events.is_empty());
        assert_eq!(outcome.metrics.cell_name, "a");
    }

    #[test]
    fn scales_build_valid_configs() {
        for scale in [SimScale::Tiny, SimScale::Small, SimScale::Month] {
            scale.config(1).validate();
        }
    }

    #[test]
    fn era_2011_runs() {
        let outcome = simulate_2011(SimScale::Tiny, 3);
        assert_eq!(outcome.metrics.cell_name, "2011");
    }

    #[test]
    fn faulty_simulation_emits_machine_removes() {
        let outcome = simulate_cell_faulty(&CellProfile::cell_2019('a'), SimScale::Tiny, 13);
        assert!(outcome.metrics.machine_failures > 0, "no failures injected");
        let removes = outcome
            .trace
            .machine_events
            .iter()
            .filter(|e| e.event_type == borg_trace::machine::MachineEventType::Remove)
            .count();
        assert!(removes > 0, "failures left no Remove events in the trace");
    }

    #[test]
    fn load_trace_dir_round_trips_clean_traces() {
        let outcome = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 5);
        let dir = std::env::temp_dir().join(format!("borg_load_clean_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        borg_trace::csv::write_trace_dir(&outcome.trace, &dir).expect("write");
        let (trace, quality) = load_trace_dir(&dir);
        assert!(quality.is_pristine(), "{}", quality.annotation());
        assert!(quality.fraction_affected().abs() < f64::EPSILON);
        assert_eq!(
            trace.instance_events.len(),
            outcome.trace.instance_events.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profiled_simulation_matches_and_snapshots() {
        let profile = CellProfile::cell_2019('a');
        let plain = simulate_cell(&profile, SimScale::Tiny, 1);
        let profiled = simulate_cell_profiled(&profile, SimScale::Tiny, 1);
        // Telemetry never perturbs the simulation.
        assert_eq!(
            plain.trace.instance_events.len(),
            profiled.trace.instance_events.len()
        );
        assert!(plain.telemetry.is_empty());
        assert!(!profiled.telemetry.is_empty());
        assert!(profiled
            .telemetry
            .spans
            .iter()
            .any(|s| s.path == "sim.run_cell/run_loop"));
    }

    #[test]
    fn instrumented_load_records_quality_metrics() {
        let outcome = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 5);
        let dir = std::env::temp_dir().join(format!("borg_load_tel_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        borg_trace::csv::write_trace_dir(&outcome.trace, &dir).expect("write");
        let mut tel = Telemetry::enabled();
        let (_, quality) = load_trace_dir_with(&dir, &mut tel);
        let snap = tel.snapshot();
        let rows = snap
            .counters
            .iter()
            .find(|c| c.name == "ingest.rows")
            .expect("ingest.rows counter");
        assert_eq!(rows.value, quality.rows_ingested);
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path == "core.load_trace_dir/ingest"));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path == "core.load_trace_dir/repair"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_metrics_mirror_quality_tallies() {
        let quality = DataQuality {
            quarantine: Quarantine::default(),
            repair: RepairReport {
                usage: borg_trace::repair::TableRepair {
                    deduped: 3,
                    ..Default::default()
                },
                windows_swapped: 2,
                ..Default::default()
            },
            rows_ingested: 100,
        };
        let mut tel = Telemetry::enabled();
        quality.export_engine_metrics(&mut tel);
        let snap = tel.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| (c.plane, c.value))
        };
        assert_eq!(
            get("trace.rows_ingested"),
            Some((Plane::Engine, 100)),
            "row count on the engine plane"
        );
        assert_eq!(get("trace.quarantine.lines"), Some((Plane::Engine, 0)));
        assert_eq!(get("trace.repair.actions"), Some((Plane::Engine, 5)));
        assert_eq!(get("trace.repair.usage.actions"), Some((Plane::Engine, 3)));
        // Untouched tables emit no per-table counter.
        assert_eq!(get("trace.repair.machine_events.actions"), None);
        // The deterministic plane stays empty: digests unaffected.
        assert!(snap.counters.iter().all(|c| c.plane == Plane::Engine));
    }

    #[test]
    fn load_trace_dir_annotates_garbled_input() {
        let outcome = simulate_cell(&CellProfile::cell_2019('c'), SimScale::Tiny, 6);
        let dir = std::env::temp_dir().join(format!("borg_load_garbled_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        borg_trace::csv::write_trace_dir(&outcome.trace, &dir).expect("write");
        // Garble one data line of the instance-events table.
        let path = dir.join(borg_trace::csv::FILE_INSTANCE);
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "need at least one data line");
        let garbled = format!("##corrupt##{}", lines[1]);
        lines[1] = &garbled;
        std::fs::write(&path, lines.join("\n")).expect("rewrite");
        let (_, quality) = load_trace_dir(&dir);
        assert!(!quality.is_pristine());
        assert_eq!(
            quality.quarantine.count_for(borg_trace::csv::FILE_INSTANCE),
            1
        );
        assert!(quality.annotation().contains("data quality:"));
        assert!(quality.fraction_affected() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
