//! Declarative query plans: hashable, replayable descriptions of the
//! queries the service accepts.
//!
//! The service cannot cache or deduplicate opaque closures, so requests
//! carry a [`PlanSpec`] — a small declarative subset of the
//! `borg_query` pipeline (filter → group-by → sort → limit) over one of
//! the four trace tables. A spec is `Hash`, so `(epoch seq, plan
//! fingerprint)` keys the single-flight result cache, and it is plain
//! data, so the chaos harness can replay the exact same workload from a
//! seed.

use crate::epoch::TableId;
use borg_query::fxhash::FxHasher;
use borg_query::prelude::*;
use borg_query::{Agg, CancelToken, QueryError};
use std::hash::{Hash, Hasher};

/// Comparison operator for a [`PlanSpec`] filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `column >= value`
    Ge,
    /// `column > value`
    Gt,
    /// `column <= value`
    Le,
    /// `column < value`
    Lt,
    /// `column == value`
    Eq,
}

/// `column <op> literal` over an integer column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterSpec {
    /// Column to compare.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Integer literal to compare against.
    pub value: i64,
}

/// Aggregation over the grouped rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggSpec {
    /// Row count per group, output column `n`.
    CountAll,
    /// Sum of a column per group, output column `total`.
    Sum(String),
    /// Maximum of a column per group, output column `peak`.
    Max(String),
}

/// `group_by(keys)` plus one aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    /// Grouping key columns.
    pub keys: Vec<String>,
    /// The aggregate to compute.
    pub agg: AggSpec,
}

/// A declarative query over one epoch table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanSpec {
    /// Which trace table the pipeline starts from.
    pub table: TableId,
    /// Optional row filter.
    pub filter: Option<FilterSpec>,
    /// Optional group-by + aggregate.
    pub group: Option<GroupSpec>,
    /// Optional sort: `(column, descending)`. Always applied when a
    /// group stage exists so output row order is canonical.
    pub sort: Option<(String, bool)>,
    /// Optional row limit, applied last.
    pub limit: Option<usize>,
}

impl PlanSpec {
    /// A full-table scan (the cheapest useful plan).
    pub fn scan(table: TableId) -> PlanSpec {
        PlanSpec {
            table,
            filter: None,
            group: None,
            sort: None,
            limit: None,
        }
    }

    /// Stable 64-bit identity of this plan, used (with the epoch
    /// sequence number) as the result-cache key. FxHash of the
    /// `#[derive(Hash)]` encoding: no randomized hasher state, so the
    /// value is identical across runs and processes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }

    /// Builds and runs the pipeline over `table`, checking `cancel` at
    /// the engine's block boundaries (deadline propagation).
    pub fn execute(&self, table: Table, cancel: Option<CancelToken>) -> Result<Table, QueryError> {
        let mut q = Query::from(table);
        if let Some(c) = cancel {
            q = q.with_cancel(c);
        }
        if let Some(f) = &self.filter {
            let c = col(f.column.as_str());
            let v = lit(f.value);
            q = q.filter(match f.op {
                CmpOp::Ge => c.ge(v),
                CmpOp::Gt => c.gt(v),
                CmpOp::Le => c.le(v),
                CmpOp::Lt => c.lt(v),
                CmpOp::Eq => c.eq(v),
            });
        }
        if let Some(g) = &self.group {
            let keys: Vec<&str> = g.keys.iter().map(String::as_str).collect();
            let agg = match &g.agg {
                AggSpec::CountAll => Agg::count_all("n"),
                AggSpec::Sum(c) => Agg::sum(c.as_str(), "total"),
                AggSpec::Max(c) => Agg::max(c.as_str(), "peak"),
            };
            q = q.group_by(&keys, vec![agg]);
        }
        if let Some((column, desc)) = &self.sort {
            let order = if *desc {
                SortOrder::Descending
            } else {
                SortOrder::Ascending
            };
            q = q.sort_by(column, order);
        }
        if let Some(n) = self.limit {
            q = q.limit(n);
        }
        q.run()
    }

    /// Virtual service cost in engine blocks: how many 64 Ki-row block
    /// boundaries the scan passes (minimum 1). This is the unit at
    /// which cooperative cancellation is observed, so it is also the
    /// granularity of the virtual-time cost model.
    pub fn cost_blocks(&self, table_rows: usize) -> u64 {
        const BLOCK_ROWS: usize = 1 << 16;
        (table_rows.div_ceil(BLOCK_ROWS)).max(1) as u64
    }
}

/// Canonical byte rendering of a query result, the unit of the service
/// equivalence contract: serving a plan must yield bytes identical to
/// running the same plan directly against the library.
pub fn table_bytes(t: &Table) -> Vec<u8> {
    t.to_string().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_query::{DataType, Value};

    fn spec() -> PlanSpec {
        PlanSpec {
            table: TableId::InstanceEvents,
            filter: Some(FilterSpec {
                column: "priority".into(),
                op: CmpOp::Ge,
                value: 103,
            }),
            group: Some(GroupSpec {
                keys: vec!["tier".into()],
                agg: AggSpec::CountAll,
            }),
            sort: Some(("n".into(), true)),
            limit: Some(10),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = spec();
        let mut b = spec();
        assert_eq!(a.fingerprint(), spec().fingerprint());
        b.limit = Some(11);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn execute_matches_hand_built_query() {
        let mut t = Table::new(vec![("tier", DataType::Str), ("priority", DataType::Int)]);
        for (tier, p) in [("prod", 120), ("beb", 30), ("prod", 110), ("mid", 103)] {
            t.push_row(vec![Value::str(tier), Value::Int(p)]).unwrap();
        }
        let got = spec().execute(t.clone(), None).unwrap();
        let want = Query::from(t)
            .filter(col("priority").ge(lit(103i64)))
            .group_by(&["tier"], vec![Agg::count_all("n")])
            .sort_by("n", SortOrder::Descending)
            .limit(10)
            .run()
            .unwrap();
        assert_eq!(table_bytes(&got), table_bytes(&want));
    }

    #[test]
    fn cost_is_block_rounded() {
        let p = PlanSpec::scan(TableId::Usage);
        assert_eq!(p.cost_blocks(0), 1);
        assert_eq!(p.cost_blocks(1), 1);
        assert_eq!(p.cost_blocks(1 << 16), 1);
        assert_eq!(p.cost_blocks((1 << 16) + 1), 2);
    }
}
