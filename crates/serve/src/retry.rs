//! Seeded retry backoff: exponential with deterministic jitter.
//!
//! A retry storm is the classic way a service turns one fault into an
//! outage, and unjittered backoff is the classic way retries
//! synchronize into waves. The cure is exponential backoff with
//! jitter — but naive jitter (ambient entropy) would break the
//! replayability contract. Here the jitter for `(query id, attempt)`
//! is drawn from a seeded generator, so backoff schedules are both
//! de-synchronized across queries *and* byte-identical across runs
//! with the same seed.

use borg_query::fxhash::FxHasher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hash::{Hash, Hasher};

/// Backoff parameters for failed-attempt retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in µs.
    pub base_us: u64,
    /// Cap on the (pre-jitter) delay, in µs.
    pub max_us: u64,
    /// Jitter fraction `j`: the delay is multiplied by a value drawn
    /// uniformly from `[1, 1 + j)`.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl RetryPolicy {
    /// 1 ms base, 64 ms cap, 50% jitter.
    pub fn default_with_seed(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base_us: 1_000,
            max_us: 64_000,
            jitter: 0.5,
            seed,
        }
    }

    /// Backoff before retrying `query_id` after its `attempt`-th
    /// execution failed (`attempt` counts from 0): `base · 2^attempt`,
    /// capped, times the seeded jitter factor. Pure in
    /// `(seed, query_id, attempt)`.
    pub fn backoff_us(&self, query_id: u64, attempt: u32) -> u64 {
        let exp = self
            .base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_us);
        let mut h = FxHasher::default();
        (self.seed, query_id, attempt).hash(&mut h);
        let mut rng = StdRng::seed_from_u64(h.finish());
        let factor = 1.0 + self.jitter.max(0.0) * rng.random::<f64>();
        (exp as f64 * factor) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default_with_seed(1)
        };
        assert_eq!(p.backoff_us(9, 0), 1_000);
        assert_eq!(p.backoff_us(9, 1), 2_000);
        assert_eq!(p.backoff_us(9, 2), 4_000);
        assert_eq!(p.backoff_us(9, 10), 64_000, "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default_with_seed(5);
        for id in 0..100u64 {
            let b = p.backoff_us(id, 0);
            assert_eq!(b, p.backoff_us(id, 0), "replayable");
            assert!((1_000..1_500).contains(&b), "within [base, base·1.5): {b}");
        }
        // Jitter actually varies across queries (de-synchronization).
        let distinct: std::collections::BTreeSet<u64> =
            (0..100u64).map(|id| p.backoff_us(id, 0)).collect();
        assert!(distinct.len() > 50);
    }
}
