//! borg-witness: request-scoped tracing for the serve path.
//!
//! Aggregate tallies (DESIGN.md §16) prove overload behavior in bulk;
//! the witness explains *one query*. Every submission mints a causal
//! **trace id** — a pure hash of (query id, tier, epoch, plan
//! fingerprint) — and the service reports lifecycle edges back here,
//! building a per-query **span tree**:
//!
//! ```text
//! trace ab12… q 17 prod          (root: submission → terminal)
//!   queue      …                 (admission queue / retry backoff)
//!   attempt 0  …                 (dispatch → result fed back)
//!     execute    …               (attempt minus injected stall)
//!       block_scan …             (blocks claimed via the CancelToken)
//!     cancel     …               (zero-length marker: token observed)
//! ```
//!
//! Block-scan attribution rides the [`borg_query::CancelToken`] the
//! service already threads into `try_map_blocks`: workers note each
//! claimed block on the token, the witness reads the count when the
//! attempt's result comes back. The same tree is exported three ways:
//! canonical text bytes (the byte-identity surface the determinism
//! tests pin), real-timestamp chrome-tracing JSON
//! ([`borg_telemetry::trace_events_json`]), and a [`borg_query::Table`]
//! so traces are queryable by the engine they describe.
//!
//! The witness also keeps per-tier **histogram exemplars**: for each
//! latency bucket of the per-tier histogram, the trace id of the first
//! completion that landed there — the hook that resolves "p99 spiked"
//! to a concrete span tree (see `serve_slo`).

use crate::tier::Tier;
use borg_query::fxhash::FxHasher;
use borg_query::{DataType, QueryError, Table, Value};
use borg_telemetry::{Histogram, Plane, Telemetry, TraceEvent};
use std::collections::BTreeMap;
use std::hash::Hasher;

/// Span-segment kinds within one query's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// Waiting in an admission queue (or retry backoff + requeue).
    Queue,
    /// A dispatched execution attempt, dispatch → result.
    Attempt,
    /// The executing part of an attempt (minus the injected stall).
    Execute,
    /// Block-scan work within the execute segment.
    BlockScan,
    /// Zero-length marker: the attempt observed its cancelled token
    /// (or the query expired while queued).
    Cancel,
}

impl SegKind {
    /// All kinds, stable order.
    pub const ALL: [SegKind; 5] = [
        SegKind::Queue,
        SegKind::Attempt,
        SegKind::Execute,
        SegKind::BlockScan,
        SegKind::Cancel,
    ];

    /// Stable token for exports and metric paths.
    pub fn name(self) -> &'static str {
        match self {
            SegKind::Queue => "queue",
            SegKind::Attempt => "attempt",
            SegKind::Execute => "execute",
            SegKind::BlockScan => "block_scan",
            SegKind::Cancel => "cancel",
        }
    }

    /// Depth in the rendered span tree (root is 0).
    pub fn depth(self) -> usize {
        match self {
            SegKind::Queue | SegKind::Attempt => 1,
            SegKind::Execute | SegKind::Cancel => 2,
            SegKind::BlockScan => 3,
        }
    }
}

/// One segment of a query's span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// What kind of work this covers.
    pub kind: SegKind,
    /// Attempt number the segment belongs to (queue segments carry the
    /// attempt they precede).
    pub attempt: u32,
    /// Start, µs.
    pub start_us: u64,
    /// End, µs (== start for markers).
    pub end_us: u64,
    /// Blocks attributed (block-scan segments only).
    pub blocks: u64,
}

/// One query's full trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The minted causal id.
    pub trace_id: u64,
    /// The query id it witnesses.
    pub query_id: u64,
    /// Priority class.
    pub tier: Tier,
    /// Submission time, µs.
    pub submitted_us: u64,
    /// Terminal time, µs (0 while live).
    pub end_us: u64,
    /// Terminal token: `done`, `expired`, `failed`, a shed reason, or
    /// `live`.
    pub outcome: &'static str,
    /// Segments in creation order.
    pub segments: Vec<Segment>,
}

impl QueryTrace {
    /// Renders the span tree as indented text (one line per segment).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "trace {:016x} q {} {} sub {} end {} {}\n",
            self.trace_id,
            self.query_id,
            self.tier.name(),
            self.submitted_us,
            self.end_us,
            self.outcome
        );
        for s in &self.segments {
            for _ in 0..s.kind.depth() {
                out.push_str("  ");
            }
            let _ = writeln!(
                out,
                "{} a{} {}..{} b{}",
                s.kind.name(),
                s.attempt,
                s.start_us,
                s.end_us,
                s.blocks
            );
        }
        out
    }

    /// Total µs spent in segments of `kind`.
    pub fn time_in(&self, kind: SegKind) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.end_us - s.start_us)
            .sum()
    }
}

/// Witness tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessConfig {
    /// Whether traces are collected (off = all no-ops, zero cost
    /// beyond one branch per hook).
    pub enabled: bool,
}

impl WitnessConfig {
    /// Collecting.
    pub fn on() -> WitnessConfig {
        WitnessConfig { enabled: true }
    }

    /// Inert.
    pub fn off() -> WitnessConfig {
        WitnessConfig { enabled: false }
    }
}

/// Mints the causal trace id for a submission: a pure FxHash of the
/// identifying tuple, so the id is stable across runs (same workload ⇒
/// same ids) yet unique per query within a run.
pub fn mint_trace_id(query_id: u64, tier: Tier, epoch: &str, plan_fingerprint: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(query_id);
    h.write_u8(tier.index() as u8);
    h.write(epoch.as_bytes());
    h.write_u64(plan_fingerprint);
    h.finish()
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct Witness {
    enabled: bool,
    /// Completed and live traces by query id.
    traces: BTreeMap<u64, QueryTrace>,
    /// Open queue segment per query id: (entered_at, attempt).
    open_queue: BTreeMap<u64, (u64, u32)>,
    /// Open attempt per query id: (attempt, start, stall_us).
    open_attempt: BTreeMap<u64, (u32, u64, u64)>,
    /// First trace id landing in each per-tier latency bucket
    /// (aligned with [`Histogram`]'s 65 bit-length buckets).
    exemplars: [[Option<u64>; 65]; 3],
}

impl Witness {
    /// A fresh witness.
    pub fn new(cfg: WitnessConfig) -> Witness {
        Witness {
            enabled: cfg.enabled,
            traces: BTreeMap::new(),
            open_queue: BTreeMap::new(),
            open_attempt: BTreeMap::new(),
            exemplars: [[None; 65]; 3],
        }
    }

    /// Whether this witness records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A submission entered the service: open the root and the first
    /// queue segment.
    pub fn on_submit(&mut self, now_us: u64, id: u64, tier: Tier, trace_id: u64) {
        if !self.enabled {
            return;
        }
        self.traces.insert(
            id,
            QueryTrace {
                trace_id,
                query_id: id,
                tier,
                submitted_us: now_us,
                end_us: 0,
                outcome: "live",
                segments: Vec::new(),
            },
        );
        self.open_queue.insert(id, (now_us, 0));
    }

    /// An attempt was dispatched: close the queue segment, open the
    /// attempt (remembering the injected stall so the execute
    /// sub-segment can exclude it).
    pub fn on_start(&mut self, now_us: u64, id: u64, attempt: u32, stall_us: u64) {
        if !self.enabled {
            return;
        }
        if let Some((entered, _)) = self.open_queue.remove(&id) {
            if let Some(tr) = self.traces.get_mut(&id) {
                tr.segments.push(Segment {
                    kind: SegKind::Queue,
                    attempt,
                    start_us: entered,
                    end_us: now_us,
                    blocks: 0,
                });
            }
        }
        self.open_attempt.insert(id, (attempt, now_us, stall_us));
    }

    /// A retry was scheduled: the query re-enters waiting state now
    /// (the queue segment covers backoff + requeue until dispatch).
    pub fn on_retry(&mut self, now_us: u64, id: u64, next_attempt: u32) {
        if !self.enabled {
            return;
        }
        self.open_queue.insert(id, (now_us, next_attempt));
    }

    /// An attempt's result came back: close the attempt, derive the
    /// execute / block-scan sub-segments, and drop a cancel marker if
    /// the attempt was cancelled.
    pub fn on_attempt_end(&mut self, now_us: u64, id: u64, cancelled: bool, blocks: u64) {
        if !self.enabled {
            return;
        }
        let Some((attempt, start, stall)) = self.open_attempt.remove(&id) else {
            return;
        };
        let Some(tr) = self.traces.get_mut(&id) else {
            return;
        };
        tr.segments.push(Segment {
            kind: SegKind::Attempt,
            attempt,
            start_us: start,
            end_us: now_us,
            blocks: 0,
        });
        let exec_start = (start + stall).min(now_us);
        tr.segments.push(Segment {
            kind: SegKind::Execute,
            attempt,
            start_us: exec_start,
            end_us: now_us,
            blocks: 0,
        });
        if blocks > 0 {
            tr.segments.push(Segment {
                kind: SegKind::BlockScan,
                attempt,
                start_us: exec_start,
                end_us: now_us,
                blocks,
            });
        }
        if cancelled {
            tr.segments.push(Segment {
                kind: SegKind::Cancel,
                attempt,
                start_us: now_us,
                end_us: now_us,
                blocks: 0,
            });
        }
    }

    /// The query reached a terminal state. Closes any open queue
    /// segment (shed / queued-expiry paths) and stamps the outcome; a
    /// queued expiry also gets a cancel marker.
    pub fn on_terminal(&mut self, now_us: u64, id: u64, outcome: &'static str) {
        if !self.enabled {
            return;
        }
        let queued = self.open_queue.remove(&id);
        self.open_attempt.remove(&id);
        let Some(tr) = self.traces.get_mut(&id) else {
            return;
        };
        if let Some((entered, attempt)) = queued {
            tr.segments.push(Segment {
                kind: SegKind::Queue,
                attempt,
                start_us: entered,
                end_us: now_us,
                blocks: 0,
            });
            if outcome == "expired" {
                tr.segments.push(Segment {
                    kind: SegKind::Cancel,
                    attempt,
                    start_us: now_us,
                    end_us: now_us,
                    blocks: 0,
                });
            }
        }
        tr.end_us = now_us;
        tr.outcome = outcome;
    }

    /// Records a completion latency for the exemplar table: the first
    /// trace to land in a histogram bucket becomes that bucket's
    /// exemplar (deterministic — completion order is part of the
    /// replayable schedule).
    pub fn note_done(&mut self, tier: Tier, latency_us: u64, trace_id: u64) {
        if !self.enabled {
            return;
        }
        let b = Histogram::bucket_of(latency_us);
        let slot = &mut self.exemplars[tier.index()][b];
        if slot.is_none() {
            *slot = Some(trace_id);
        }
    }

    /// The exemplar trace id for a tier's latency bucket, if any
    /// completion landed there.
    pub fn exemplar(&self, tier: Tier, bucket: usize) -> Option<u64> {
        self.exemplars[tier.index()].get(bucket).copied().flatten()
    }

    /// Drill-down: the exemplar for the bucket holding the
    /// `q`-quantile of `hist` (the per-tier latency histogram). A
    /// non-empty bucket always has an exemplar, because every
    /// completion that fed the histogram also fed the exemplar table.
    pub fn exemplar_for(&self, tier: Tier, hist: &Histogram, q: f64) -> Option<(usize, u64)> {
        let b = hist.quantile_bucket(q)?;
        self.exemplar(tier, b).map(|id| (b, id))
    }

    /// A trace by query id.
    pub fn trace(&self, query_id: u64) -> Option<&QueryTrace> {
        self.traces.get(&query_id)
    }

    /// A trace by its minted trace id (linear scan; exports and
    /// drill-downs only).
    pub fn trace_by_id(&self, trace_id: u64) -> Option<&QueryTrace> {
        self.traces.values().find(|t| t.trace_id == trace_id)
    }

    /// Number of traces collected.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no traces were collected.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Canonical text export, query-id order — the byte-identity
    /// surface `tests/serve_witness.rs` pins.
    pub fn export_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for tr in self.traces.values() {
            out.push_str(&tr.render());
        }
        out.into_bytes()
    }

    /// Real-timestamp chrome-tracing events: one lane per query, one
    /// complete event per segment plus a root event per trace. Render
    /// with [`borg_telemetry::trace_events_json`].
    pub fn chrome_events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for tr in self.traces.values() {
            let hex = format!("{:016x}", tr.trace_id);
            out.push(TraceEvent {
                name: format!("q{} {}", tr.query_id, tr.outcome),
                tid: tr.query_id,
                ts_us: tr.submitted_us,
                dur_us: tr.end_us.saturating_sub(tr.submitted_us),
                args: vec![
                    ("trace_id".to_string(), hex.clone()),
                    ("tier".to_string(), tr.tier.name().to_string()),
                ],
            });
            for s in &tr.segments {
                out.push(TraceEvent {
                    name: s.kind.name().to_string(),
                    tid: tr.query_id,
                    ts_us: s.start_us,
                    dur_us: s.end_us - s.start_us,
                    args: vec![
                        ("trace_id".to_string(), hex.clone()),
                        ("attempt".to_string(), s.attempt.to_string()),
                        ("blocks".to_string(), s.blocks.to_string()),
                    ],
                });
            }
        }
        out
    }

    /// The span tree as a queryable [`Table`] (one row per segment):
    /// `trace_id, query_id, tier, segment, attempt, start_us, end_us,
    /// blocks` — traces analyzable by the engine they describe.
    pub fn to_table(&self) -> Result<Table, QueryError> {
        let mut t = Table::new(vec![
            ("trace_id", DataType::Str),
            ("query_id", DataType::Int),
            ("tier", DataType::Str),
            ("segment", DataType::Str),
            ("attempt", DataType::Int),
            ("start_us", DataType::Int),
            ("end_us", DataType::Int),
            ("blocks", DataType::Int),
        ]);
        for tr in self.traces.values() {
            let hex = format!("{:016x}", tr.trace_id);
            for s in &tr.segments {
                t.push_row(vec![
                    Value::Str(hex.clone()),
                    Value::Int(tr.query_id as i64),
                    Value::Str(tr.tier.name().to_string()),
                    Value::Str(s.kind.name().to_string()),
                    Value::Int(s.attempt as i64),
                    Value::Int(s.start_us as i64),
                    Value::Int(s.end_us as i64),
                    Value::Int(s.blocks as i64),
                ])?;
            }
        }
        Ok(t)
    }

    /// Exports per-segment-kind aggregates onto the telemetry engine
    /// plane — grid-style counters (`serve.seg.{kind}.d00.{count,ns}`)
    /// plus span aggregates — so serve-side time breaks down through
    /// the same registry/export path as the sim event loop.
    pub fn export_telemetry(&self, tel: &mut Telemetry) {
        if !self.enabled || !tel.is_enabled() {
            return;
        }
        let mut totals: [(u64, u64); 5] = [(0, 0); 5];
        for tr in self.traces.values() {
            for s in &tr.segments {
                let k = match s.kind {
                    SegKind::Queue => 0,
                    SegKind::Attempt => 1,
                    SegKind::Execute => 2,
                    SegKind::BlockScan => 3,
                    SegKind::Cancel => 4,
                };
                totals[k].0 += 1;
                totals[k].1 += (s.end_us - s.start_us) * 1_000;
            }
        }
        for (kind, (count, ns)) in SegKind::ALL.iter().zip(totals.iter()) {
            tel.count(
                &format!("serve.seg.{}.d00.count", kind.name()),
                Plane::Engine,
                *count,
            );
            tel.count(
                &format!("serve.seg.{}.d00.ns", kind.name()),
                Plane::Engine,
                *ns,
            );
            tel.span_aggregate(&format!("serve.{}", kind.name()), *count, *ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_lifecycle() -> Witness {
        let mut w = Witness::new(WitnessConfig::on());
        let tid = mint_trace_id(7, Tier::Prod, "a", 0xfeed);
        w.on_submit(100, 7, Tier::Prod, tid);
        w.on_start(150, 7, 0, 20);
        w.on_attempt_end(400, 7, false, 3);
        w.on_terminal(400, 7, "done");
        w.note_done(Tier::Prod, 300, tid);
        w
    }

    #[test]
    fn lifecycle_builds_the_span_tree() {
        let w = full_lifecycle();
        let tr = w.trace(7).unwrap();
        assert_eq!(tr.outcome, "done");
        assert_eq!(tr.end_us, 400);
        let kinds: Vec<SegKind> = tr.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegKind::Queue,
                SegKind::Attempt,
                SegKind::Execute,
                SegKind::BlockScan
            ]
        );
        // Queue 100..150; execute starts after the 20µs stall.
        assert_eq!(tr.time_in(SegKind::Queue), 50);
        assert_eq!(tr.time_in(SegKind::Execute), 230);
        assert_eq!(tr.segments[3].blocks, 3);
        let rendered = tr.render();
        assert!(rendered.contains("block_scan a0 170..400 b3"));
    }

    #[test]
    fn trace_ids_are_pure_and_distinct() {
        let a = mint_trace_id(1, Tier::Prod, "a", 10);
        assert_eq!(a, mint_trace_id(1, Tier::Prod, "a", 10));
        assert_ne!(a, mint_trace_id(2, Tier::Prod, "a", 10));
        assert_ne!(a, mint_trace_id(1, Tier::Batch, "a", 10));
        assert_ne!(a, mint_trace_id(1, Tier::Prod, "b", 10));
    }

    #[test]
    fn cancelled_attempt_gets_a_marker() {
        let mut w = Witness::new(WitnessConfig::on());
        w.on_submit(0, 1, Tier::Batch, 0xabc);
        w.on_start(10, 1, 0, 0);
        w.on_attempt_end(500, 1, true, 2);
        w.on_terminal(500, 1, "expired");
        let tr = w.trace(1).unwrap();
        assert!(tr.segments.iter().any(|s| s.kind == SegKind::Cancel));
        assert_eq!(tr.outcome, "expired");
    }

    #[test]
    fn queued_expiry_closes_queue_with_a_marker() {
        let mut w = Witness::new(WitnessConfig::on());
        w.on_submit(0, 2, Tier::BestEffort, 0xdef);
        w.on_terminal(400, 2, "expired");
        let tr = w.trace(2).unwrap();
        assert_eq!(tr.segments[0].kind, SegKind::Queue);
        assert_eq!(tr.segments[0].end_us, 400);
        assert_eq!(tr.segments[1].kind, SegKind::Cancel);
    }

    #[test]
    fn retry_reopens_the_queue_segment() {
        let mut w = Witness::new(WitnessConfig::on());
        w.on_submit(0, 3, Tier::Prod, 0x123);
        w.on_start(5, 3, 0, 0);
        w.on_attempt_end(50, 3, false, 0);
        w.on_retry(50, 3, 1);
        w.on_start(90, 3, 1, 0);
        w.on_attempt_end(200, 3, false, 4);
        w.on_terminal(200, 3, "done");
        let tr = w.trace(3).unwrap();
        let queues: Vec<&Segment> = tr
            .segments
            .iter()
            .filter(|s| s.kind == SegKind::Queue)
            .collect();
        assert_eq!(queues.len(), 2);
        assert_eq!((queues[1].start_us, queues[1].end_us), (50, 90));
        assert_eq!(queues[1].attempt, 1);
    }

    #[test]
    fn exemplar_is_first_in_bucket_and_quantile_resolvable() {
        let mut w = Witness::new(WitnessConfig::on());
        w.note_done(Tier::Prod, 1_000, 0xAAA);
        w.note_done(Tier::Prod, 1_100, 0xBBB); // same bucket, ignored
        w.note_done(Tier::Prod, 60_000, 0xCCC);
        let mut h = Histogram::default();
        h.record(1_000);
        h.record(1_100);
        h.record(60_000);
        let (b, id) = w.exemplar_for(Tier::Prod, &h, 0.99).unwrap();
        assert_eq!(id, 0xCCC);
        assert_eq!(b, Histogram::bucket_of(60_000));
        let (_, id_low) = w.exemplar_for(Tier::Prod, &h, 0.0).unwrap();
        assert_eq!(id_low, 0xAAA, "first completion wins the bucket");
    }

    #[test]
    fn exports_are_consistent_and_deterministic() {
        let a = full_lifecycle();
        let b = full_lifecycle();
        assert_eq!(a.export_bytes(), b.export_bytes());
        assert!(!a.export_bytes().is_empty());
        let json = borg_telemetry::trace_events_json(&a.chrome_events());
        borg_telemetry::validate_json(&json).unwrap();
        let table = a.to_table().unwrap();
        assert_eq!(table.num_rows(), a.trace(7).unwrap().segments.len());
        let tr = a.trace_by_id(a.trace(7).unwrap().trace_id).unwrap();
        assert_eq!(tr.query_id, 7);
    }

    #[test]
    fn disabled_witness_is_inert() {
        let mut w = Witness::new(WitnessConfig::off());
        w.on_submit(0, 1, Tier::Prod, 1);
        w.on_start(1, 1, 0, 0);
        w.on_attempt_end(2, 1, false, 5);
        w.on_terminal(2, 1, "done");
        w.note_done(Tier::Prod, 2, 1);
        assert!(w.is_empty());
        assert!(w.export_bytes().is_empty());
        assert!(w.exemplar(Tier::Prod, 2).is_none());
    }

    #[test]
    fn telemetry_export_aggregates_segment_kinds() {
        let w = full_lifecycle();
        let mut tel = Telemetry::enabled();
        w.export_telemetry(&mut tel);
        let snap = tel.snapshot();
        let rows = borg_telemetry::grid_breakdown(&snap, "serve.seg");
        let queue = rows.iter().find(|r| r.kind == "queue").unwrap();
        assert_eq!(queue.count, 1);
        assert_eq!(queue.total_ns, 50_000);
    }
}
