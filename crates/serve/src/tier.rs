//! Service tiers and per-tier admission policy.
//!
//! The paper's central capacity argument (§5) is that best-effort batch
//! (beb) work soaks up resources prod leaves idle *because* it can be
//! displaced the moment prod needs them. borg-serve applies the same
//! discipline to query capacity: three tiers with dedicated worker
//! quotas and bounded queues, where overload is absorbed bottom-up —
//! best-effort sheds first, batch next, and prod is engineered to never
//! shed at all.

/// Request priority class, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Latency-sensitive: dedicated quota, tight deadline, never shed.
    Prod,
    /// Throughput-oriented: generous queue, moderate deadline.
    Batch,
    /// Scavenger class: first to be displaced or shed under overload.
    BestEffort,
}

impl Tier {
    /// All tiers, highest priority first.
    pub const ALL: [Tier; 3] = [Tier::Prod, Tier::Batch, Tier::BestEffort];

    /// Stable short name for logs and metric paths.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Prod => "prod",
            Tier::Batch => "batch",
            Tier::BestEffort => "best_effort",
        }
    }

    /// Index into per-tier arrays (`ALL[t.index()] == t`).
    pub fn index(self) -> usize {
        match self {
            Tier::Prod => 0,
            Tier::Batch => 1,
            Tier::BestEffort => 2,
        }
    }

    /// Default SLO success target for the tier: the fraction of
    /// requests that must complete within the tier's latency objective
    /// (prod promises three nines, the scavenger class very little).
    pub fn default_slo_target(self) -> f64 {
        match self {
            Tier::Prod => 0.999,
            Tier::Batch => 0.95,
            Tier::BestEffort => 0.80,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission parameters for one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Dedicated worker slots: requests of this tier dispatch only into
    /// these, so a lower tier can never starve a higher one.
    pub workers: usize,
    /// Maximum queued (admitted but not yet running) requests.
    pub queue_cap: usize,
    /// Budget from submission to last byte; propagated into the query
    /// engine as a cooperative cancellation token.
    pub deadline_us: u64,
    /// Total execution attempts (1 = no retry) for failed workers.
    pub max_attempts: u32,
}

/// Per-tier policies plus the global queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Policies indexed by [`Tier::index`].
    pub tiers: [TierPolicy; 3],
    /// Bound on total queued requests across tiers; beyond it a new
    /// request must displace lower-tier queued work or be shed.
    pub global_queue_cap: usize,
}

impl AdmissionConfig {
    /// Policy for one tier.
    pub fn tier(&self, t: Tier) -> &TierPolicy {
        &self.tiers[t.index()]
    }

    /// A small profile sized for tests and the virtual-time harness:
    /// 2/2/1 workers, deadlines 50 ms / 200 ms / 400 ms.
    pub fn small() -> AdmissionConfig {
        AdmissionConfig {
            tiers: [
                TierPolicy {
                    workers: 2,
                    queue_cap: 64,
                    deadline_us: 50_000,
                    max_attempts: 3,
                },
                TierPolicy {
                    workers: 2,
                    queue_cap: 32,
                    deadline_us: 200_000,
                    max_attempts: 2,
                },
                TierPolicy {
                    workers: 1,
                    queue_cap: 8,
                    deadline_us: 400_000,
                    max_attempts: 1,
                },
            ],
            global_queue_cap: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_is_priority_order() {
        assert!(Tier::Prod < Tier::Batch);
        assert!(Tier::Batch < Tier::BestEffort);
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn names_are_metric_safe() {
        for t in Tier::ALL {
            assert!(t.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
