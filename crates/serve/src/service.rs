//! The sans-io service state machine: admission, deadlines, retries,
//! breakers — with no threads, no clock, and no execution inside.
//!
//! [`Service`] makes every *decision* (admit / queue / displace / shed /
//! dispatch / retry / expire) but performs no *work*: callers pass in
//! the current time, feed results back, and drain [`Action`]s telling
//! them which attempt to start. Two drivers exist:
//!
//! * [`crate::sim::ServeSim`] — virtual time plus a block-granular cost
//!   model; runs thousands of simulated seconds in milliseconds and is
//!   the surface for the determinism and overload contracts.
//! * [`crate::smoke::run_smoke`] — the blessed wall clock plus a real
//!   [`crate::pool::ServePool`]; proves the same state machine behaves
//!   under real threads, real stalls, and real panics.
//!
//! Because every decision is a pure function of (config, submitted
//! requests, fed-back results, time values), the event log —
//! [`Service::log_bytes`] — is byte-identical across runs given the
//! same virtual-time driver and seed. That is the determinism surface
//! the robustness tests pin.
//!
//! Ordering rules that keep the log deterministic: all keyed state
//! lives in `BTreeMap`s (no hash-order iteration, borg-lint D1), timers
//! tie-break on a monotone sequence number, and queues are scanned in
//! tier-priority order.

use crate::breaker::CircuitBreaker;
use crate::chaos::{ChaosConfig, Fault};
use crate::epoch::Epoch;
use crate::plan::PlanSpec;
use crate::recorder::{FlightRecorder, RecorderConfig, TriggerKind};
use crate::retry::RetryPolicy;
use crate::slo::{SloConfig, SloEngine};
use crate::tier::{AdmissionConfig, Tier};
use crate::witness::{mint_trace_id, Witness, WitnessConfig};
use borg_query::CancelToken;
use borg_telemetry::{Histogram, Plane, Telemetry};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;

/// A query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Caller-assigned unique id (the workload generator numbers
    /// arrivals sequentially).
    pub id: u64,
    /// Priority class.
    pub tier: Tier,
    /// Target epoch name (must be registered).
    pub epoch: String,
    /// The query to run.
    pub plan: PlanSpec,
}

/// Why a request was shed without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Its tier queue (or the global queue) was full.
    QueueFull,
    /// A higher-tier arrival displaced it from the queue.
    Displaced,
    /// Its epoch's circuit breaker was open.
    BreakerOpen,
    /// Its epoch name was never registered.
    NoEpoch,
}

impl ShedReason {
    /// Stable log token.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Displaced => "displaced",
            ShedReason::BreakerOpen => "breaker_open",
            ShedReason::NoEpoch => "no_epoch",
        }
    }
}

/// Terminal state of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed within deadline.
    Done {
        /// Submission-to-completion latency, µs.
        latency_us: u64,
        /// Execution attempts used.
        attempts: u32,
    },
    /// Deadline passed (queued or mid-execution via cancellation).
    Expired {
        /// Submission-to-expiry latency, µs.
        latency_us: u64,
        /// Execution attempts started before expiry.
        attempts: u32,
    },
    /// Rejected without execution.
    Shed {
        /// Why.
        reason: ShedReason,
    },
    /// Every allowed attempt panicked.
    Failed {
        /// Execution attempts used.
        attempts: u32,
    },
}

/// One execution attempt the driver must start.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Query id.
    pub id: u64,
    /// 0-based attempt number.
    pub attempt: u32,
    /// Priority class (drivers route to per-tier capacity).
    pub tier: Tier,
    /// The epoch to query.
    pub epoch: Arc<Epoch>,
    /// The plan to run.
    pub plan: PlanSpec,
    /// Absolute deadline, µs.
    pub deadline_us: u64,
    /// Chaos fault injected into this attempt (pure in (seed, id,
    /// attempt); see [`ChaosConfig::fault_for`]).
    pub fault: Fault,
    /// Cooperative cancellation token; the service cancels it when the
    /// deadline passes, the executor threads it into the query engine.
    pub cancel: CancelToken,
}

/// Instructions drained by the driver via [`Service::next_action`].
#[derive(Debug, Clone)]
pub enum Action {
    /// Start executing this attempt.
    Start(Attempt),
}

/// How an execution attempt ended, fed back via
/// [`Service::on_attempt_done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptResult {
    /// The query completed and produced a result.
    Ok,
    /// The engine observed the cancelled token (deadline exceeded).
    Cancelled,
    /// The worker panicked mid-query.
    Panicked,
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tier quotas, queue bounds, deadlines, retry budgets.
    pub admission: AdmissionConfig,
    /// Backoff policy for retrying panicked attempts.
    pub retry: RetryPolicy,
    /// Consecutive failures before an epoch's breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before half-opening, µs.
    pub breaker_cooloff_us: u64,
    /// Fault injection (off for production-equivalence runs).
    pub chaos: ChaosConfig,
    /// Per-tier SLO objectives and burn-rate alerting.
    pub slo: SloConfig,
    /// Request-scoped tracing (borg-witness).
    pub witness: WitnessConfig,
    /// Anomaly flight recorder.
    pub recorder: RecorderConfig,
}

impl ServeConfig {
    /// Small test profile with chaos off; observability on, with SLO
    /// objectives derived from the admission deadlines.
    pub fn small(seed: u64) -> ServeConfig {
        let admission = AdmissionConfig::small();
        ServeConfig {
            admission,
            retry: RetryPolicy::default_with_seed(seed),
            breaker_threshold: 5,
            breaker_cooloff_us: 50_000,
            chaos: ChaosConfig::off(),
            slo: SloConfig::for_admission(&admission),
            witness: WitnessConfig::on(),
            recorder: RecorderConfig::standard(),
        }
    }
}

/// Tallies the service keeps per tier, exported to telemetry at the end
/// of a run.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests submitted.
    pub submitted: [u64; 3],
    /// Requests completed in deadline.
    pub done: [u64; 3],
    /// Requests expired (queued or mid-run).
    pub expired: [u64; 3],
    /// Requests shed, by reason.
    pub shed_queue_full: [u64; 3],
    /// Displaced from the queue by higher-tier arrivals.
    pub shed_displaced: [u64; 3],
    /// Rejected by an open breaker.
    pub shed_breaker: [u64; 3],
    /// Requests that exhausted their retry budget.
    pub failed: [u64; 3],
    /// Retry attempts scheduled.
    pub retries: [u64; 3],
    /// Completion-latency histograms (µs) of done requests — the same
    /// [`borg_telemetry::Histogram`] the registry/export path uses, so
    /// serve metrics fold into snapshots without re-recording samples.
    pub latency_us: [Histogram; 3],
}

impl ServiceStats {
    /// Total sheds for a tier.
    pub fn sheds(&self, t: Tier) -> u64 {
        let i = t.index();
        self.shed_queue_full[i] + self.shed_displaced[i] + self.shed_breaker[i]
    }

    /// The `q`-quantile completion latency for a tier (exact
    /// nearest-rank over the histogram's integer counts; 0 when none;
    /// resolution is the power-of-two bucket width).
    pub fn latency_quantile_us(&self, t: Tier, q: f64) -> u64 {
        self.latency_us[t.index()].quantile(q)
    }
}

/// Per-query bookkeeping while the query is live.
#[derive(Debug)]
struct QueryState {
    tier: Tier,
    epoch: String,
    plan: PlanSpec,
    submitted_at: u64,
    deadline_us: u64,
    attempts_done: u32,
}

/// See the module docs.
pub struct Service {
    cfg: ServeConfig,
    /// Registered epochs: name → (epoch, ready_at µs).
    epochs: BTreeMap<String, (Arc<Epoch>, u64)>,
    breakers: BTreeMap<String, CircuitBreaker>,
    /// Live queries (queued, running, or awaiting retry).
    queries: BTreeMap<u64, QueryState>,
    /// Per-tier FIFO admission queues of query ids.
    queues: [VecDeque<u64>; 3],
    /// Running attempt count per tier.
    running: [usize; 3],
    /// Running attempts: id → (deadline, token) for deadline cancels.
    running_tokens: BTreeMap<u64, (u64, CancelToken)>,
    /// Retry timers: (fire_at, seq, query id).
    timers: BinaryHeap<Reverse<(u64, u64, u64)>>,
    timer_seq: u64,
    actions: VecDeque<Action>,
    outcomes: Vec<(u64, Outcome)>,
    log: Vec<String>,
    stats: ServiceStats,
    breaker_trips: u64,
    /// Request-scoped tracing (span trees, exemplars).
    witness: Witness,
    /// Per-tier burn-rate evaluation over terminal outcomes.
    slo: SloEngine,
    /// Bounded ring of recent log lines, frozen on anomalies.
    recorder: FlightRecorder,
}

impl Service {
    /// A service with no epochs registered yet.
    pub fn new(cfg: ServeConfig) -> Service {
        let witness = Witness::new(cfg.witness);
        let slo = SloEngine::new(cfg.slo);
        let recorder = FlightRecorder::new(cfg.recorder);
        Service {
            cfg,
            epochs: BTreeMap::new(),
            breakers: BTreeMap::new(),
            queries: BTreeMap::new(),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            running: [0; 3],
            running_tokens: BTreeMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            actions: VecDeque::new(),
            outcomes: Vec::new(),
            log: Vec::new(),
            stats: ServiceStats::default(),
            breaker_trips: 0,
            witness,
            slo,
            recorder,
        }
    }

    /// Appends one event-log line, mirroring it into the flight
    /// recorder's ring.
    fn push_log(&mut self, line: String) {
        self.recorder.push(&line);
        self.log.push(line);
    }

    /// Feeds one terminal outcome to the SLO engine; a fired burn-rate
    /// alert also trips the flight recorder.
    fn slo_event(&mut self, now_us: u64, t: Tier, good: bool) {
        if self.slo.on_event(now_us, t, good) {
            self.recorder.trigger(now_us, TriggerKind::BurnRate);
        }
    }

    /// Registers (or replaces) an epoch. Under chaos, the epoch only
    /// becomes dispatchable `slow_epoch_us` later (the slow-load
    /// fault); queries targeting it queue until then.
    pub fn register_epoch(&mut self, now_us: u64, epoch: Arc<Epoch>) {
        let ready_at = if self.cfg.chaos.enabled {
            now_us + self.cfg.chaos.slow_epoch_us
        } else {
            now_us
        };
        self.push_log(format!(
            "{now_us} e {} {} {ready_at}",
            epoch.name, epoch.seq
        ));
        self.breakers.entry(epoch.name.clone()).or_insert_with(|| {
            CircuitBreaker::new(self.cfg.breaker_threshold, self.cfg.breaker_cooloff_us)
        });
        self.epochs.insert(epoch.name.clone(), (epoch, ready_at));
    }

    /// Submits one request; the admission decision happens immediately.
    pub fn submit(&mut self, now_us: u64, req: QueryRequest) {
        let t = req.tier;
        self.stats.submitted[t.index()] += 1;
        self.push_log(format!(
            "{now_us} a {} {} {} {:x}",
            req.id,
            t.name(),
            req.epoch,
            req.plan.fingerprint()
        ));
        let trace_id = mint_trace_id(req.id, t, &req.epoch, req.plan.fingerprint());
        self.witness.on_submit(now_us, req.id, t, trace_id);
        if !self.epochs.contains_key(&req.epoch) {
            self.shed(now_us, req.id, t, ShedReason::NoEpoch);
            return;
        }
        let deadline_us = now_us + self.cfg.admission.tier(t).deadline_us;
        self.queries.insert(
            req.id,
            QueryState {
                tier: t,
                epoch: req.epoch,
                plan: req.plan,
                submitted_at: now_us,
                deadline_us,
                attempts_done: 0,
            },
        );
        self.admit(now_us, req.id);
    }

    /// Admission for a new or retrying query id (state must exist).
    fn admit(&mut self, now_us: u64, id: u64) {
        let Some(qs) = self.queries.get(&id) else {
            return;
        };
        let t = qs.tier;
        let epoch = qs.epoch.clone();
        let is_retry = qs.attempts_done > 0;
        // A retry can fire after its deadline already passed (backoff
        // pushed it over); expire it instead of burning a worker.
        if now_us >= qs.deadline_us {
            let latency = now_us.saturating_sub(qs.submitted_at);
            let attempts = qs.attempts_done;
            self.queries.remove(&id);
            self.expire(now_us, id, t, latency, attempts);
            return;
        }
        // Breaker gate, non-prod only: prod's protection is its retry
        // budget; the sheddable tiers are the ones the breaker sheds.
        if t != Tier::Prod {
            if let Some(b) = self.breakers.get(&epoch) {
                if !b.allows(now_us) {
                    self.queries.remove(&id);
                    self.shed(now_us, id, t, ShedReason::BreakerOpen);
                    return;
                }
            }
        }
        if self.running[t.index()] < self.cfg.admission.tier(t).workers
            && self.epoch_ready(now_us, &epoch)
        {
            self.start(now_us, id);
            return;
        }
        // Retries re-enter at the front of their tier queue, exempt
        // from the caps: the request already held a slot once.
        if is_retry {
            self.queues[t.index()].push_front(id);
            return;
        }
        let policy = *self.cfg.admission.tier(t);
        if self.queues[t.index()].len() >= policy.queue_cap {
            self.queries.remove(&id);
            self.shed(now_us, id, t, ShedReason::QueueFull);
            return;
        }
        if self.total_queued() >= self.cfg.admission.global_queue_cap {
            // Displace the youngest queued request from the lowest
            // strictly-lower tier; if none exists, shed the arrival.
            let victim = Tier::ALL
                .iter()
                .rev()
                .filter(|v| **v > t)
                .find_map(|v| self.queues[v.index()].pop_back().map(|vid| (*v, vid)));
            match victim {
                Some((vt, vid)) => {
                    self.queries.remove(&vid);
                    self.shed(now_us, vid, vt, ShedReason::Displaced);
                }
                None => {
                    self.queries.remove(&id);
                    self.shed(now_us, id, t, ShedReason::QueueFull);
                    return;
                }
            }
        }
        self.queues[t.index()].push_back(id);
    }

    fn epoch_ready(&self, now_us: u64, name: &str) -> bool {
        self.epochs
            .get(name)
            .is_some_and(|(_, ready)| now_us >= *ready)
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Starts an execution attempt (capacity already reserved).
    fn start(&mut self, now_us: u64, id: u64) {
        let Some(qs) = self.queries.get(&id) else {
            return;
        };
        let t = qs.tier;
        let attempt = qs.attempts_done;
        let Some((epoch, _)) = self.epochs.get(&qs.epoch) else {
            return;
        };
        let fault = self.cfg.chaos.fault_for(id, attempt);
        let cancel = CancelToken::new();
        self.running[t.index()] += 1;
        let deadline_us = qs.deadline_us;
        let plan = qs.plan.clone();
        let epoch = Arc::clone(epoch);
        self.running_tokens
            .insert(id, (deadline_us, cancel.clone()));
        self.push_log(format!("{now_us} d {id} {attempt}"));
        self.witness.on_start(now_us, id, attempt, fault.stall_us);
        self.actions.push_back(Action::Start(Attempt {
            id,
            attempt,
            tier: t,
            epoch,
            plan,
            deadline_us,
            fault,
            cancel,
        }));
    }

    /// Feeds back the result of a started attempt.
    pub fn on_attempt_done(&mut self, now_us: u64, id: u64, result: AttemptResult) {
        let Some((_, token)) = self.running_tokens.remove(&id) else {
            return;
        };
        let Some(qs) = self.queries.get_mut(&id) else {
            return;
        };
        let t = qs.tier;
        self.running[t.index()] -= 1;
        qs.attempts_done += 1;
        let attempts = qs.attempts_done;
        let latency_us = now_us.saturating_sub(qs.submitted_at);
        let epoch = qs.epoch.clone();
        // Blocks the engine (or the cost model) attributed to this
        // attempt via the cancellation token.
        let blocks = token.blocks_scanned();
        self.witness
            .on_attempt_end(now_us, id, result == AttemptResult::Cancelled, blocks);
        match result {
            AttemptResult::Ok => {
                let closed = self
                    .breakers
                    .get_mut(&epoch)
                    .is_some_and(CircuitBreaker::record_success);
                if closed {
                    self.push_log(format!("{now_us} b {epoch} close"));
                }
                self.queries.remove(&id);
                self.stats.done[t.index()] += 1;
                self.stats.latency_us[t.index()].record(latency_us);
                self.push_log(format!("{now_us} c {id} {attempts} {latency_us}"));
                if let Some(trace_id) = self.witness.trace(id).map(|tr| tr.trace_id) {
                    self.witness.note_done(t, latency_us, trace_id);
                }
                self.witness.on_terminal(now_us, id, "done");
                let good = self.slo.is_good_latency(t, latency_us);
                self.slo_event(now_us, t, good);
                self.outcomes.push((
                    id,
                    Outcome::Done {
                        latency_us,
                        attempts,
                    },
                ));
            }
            AttemptResult::Cancelled => {
                // Deadline exceeded mid-run; retrying cannot help.
                self.queries.remove(&id);
                self.expire(now_us, id, t, latency_us, attempts);
            }
            AttemptResult::Panicked => {
                self.push_log(format!("{now_us} f {id} {}", attempts - 1));
                let tripped = self
                    .breakers
                    .get_mut(&epoch)
                    .is_some_and(|b| b.record_failure(now_us));
                if tripped {
                    self.breaker_trips += 1;
                    self.push_log(format!("{now_us} b {epoch} open"));
                    self.recorder.trigger(now_us, TriggerKind::BreakerOpen);
                }
                let max_attempts = self.cfg.admission.tier(t).max_attempts;
                if attempts < max_attempts {
                    let backoff = self.cfg.retry.backoff_us(id, attempts - 1);
                    let at = now_us + backoff;
                    self.stats.retries[t.index()] += 1;
                    self.timer_seq += 1;
                    self.timers.push(Reverse((at, self.timer_seq, id)));
                    self.push_log(format!("{now_us} r {id} {attempts} {at}"));
                    self.witness.on_retry(now_us, id, attempts);
                } else {
                    self.queries.remove(&id);
                    self.stats.failed[t.index()] += 1;
                    self.push_log(format!("{now_us} g {id} {attempts}"));
                    self.witness.on_terminal(now_us, id, "failed");
                    self.slo_event(now_us, t, false);
                    self.outcomes.push((id, Outcome::Failed { attempts }));
                }
            }
        }
        self.promote(now_us);
    }

    /// Advances time-driven state: fires due retry timers, expires
    /// overdue queued requests, cancels overdue running attempts, and
    /// fills freed capacity from the queues.
    pub fn on_tick(&mut self, now_us: u64) {
        while let Some(Reverse((at, _, _))) = self.timers.peek() {
            if *at > now_us {
                break;
            }
            // lint: library-panic-ok (peek above proved non-empty) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
            let Reverse((_, _, id)) = self.timers.pop().expect("peeked timer");
            if self.queries.contains_key(&id) {
                self.admit(now_us, id);
            }
        }
        // Expire queued requests whose deadline passed, tier order.
        for t in Tier::ALL {
            let mut i = 0;
            while i < self.queues[t.index()].len() {
                let id = self.queues[t.index()][i];
                let overdue = self
                    .queries
                    .get(&id)
                    .is_some_and(|qs| now_us >= qs.deadline_us);
                if overdue {
                    self.queues[t.index()].remove(i);
                    let qs = self.queries.remove(&id);
                    let (latency, attempts) = qs
                        .map(|q| (now_us.saturating_sub(q.submitted_at), q.attempts_done))
                        .unwrap_or((0, 0));
                    self.expire(now_us, id, t, latency, attempts);
                } else {
                    i += 1;
                }
            }
        }
        // Cancel overdue running attempts: the executor observes the
        // token at its next block boundary and reports Cancelled.
        for (deadline, token) in self.running_tokens.values() {
            if now_us >= *deadline {
                token.cancel();
            }
        }
        self.promote(now_us);
    }

    /// Fills free per-tier capacity from the queues (priority order).
    fn promote(&mut self, now_us: u64) {
        for t in Tier::ALL {
            while self.running[t.index()] < self.cfg.admission.tier(t).workers {
                let Some(&id) = self.queues[t.index()].front() else {
                    break;
                };
                let ready = self
                    .queries
                    .get(&id)
                    .map(|qs| qs.epoch.clone())
                    .is_some_and(|e| self.epoch_ready(now_us, &e));
                if !ready {
                    // Head-of-line wait for the slow epoch load.
                    break;
                }
                self.queues[t.index()].pop_front();
                self.start(now_us, id);
            }
        }
    }

    fn shed(&mut self, now_us: u64, id: u64, t: Tier, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull | ShedReason::NoEpoch => {
                self.stats.shed_queue_full[t.index()] += 1
            }
            ShedReason::Displaced => self.stats.shed_displaced[t.index()] += 1,
            ShedReason::BreakerOpen => self.stats.shed_breaker[t.index()] += 1,
        }
        self.push_log(format!("{now_us} s {id} {}", reason.name()));
        self.witness.on_terminal(now_us, id, reason.name());
        self.recorder.note_shed(now_us);
        self.slo_event(now_us, t, false);
        self.outcomes.push((id, Outcome::Shed { reason }));
    }

    fn expire(&mut self, now_us: u64, id: u64, t: Tier, latency_us: u64, attempts: u32) {
        self.stats.expired[t.index()] += 1;
        self.push_log(format!("{now_us} x {id} {attempts}"));
        self.witness.on_terminal(now_us, id, "expired");
        if t == Tier::Prod {
            self.recorder.trigger(now_us, TriggerKind::ProdDeadlineMiss);
        }
        self.slo_event(now_us, t, false);
        self.outcomes.push((
            id,
            Outcome::Expired {
                latency_us,
                attempts,
            },
        ));
    }

    /// Next instruction for the driver, if any.
    pub fn next_action(&mut self) -> Option<Action> {
        self.actions.pop_front()
    }

    /// Earliest time strictly after `now_us` at which
    /// [`Service::on_tick`] has work: a retry timer, a queued or
    /// running deadline, or a slow epoch becoming ready. Anything due
    /// at or before `now_us` is assumed already handled by the tick the
    /// caller just ran.
    pub fn next_wake(&self, now_us: u64) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now_us {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if let Some(Reverse((at, _, _))) = self.timers.peek() {
            consider(*at);
        }
        for q in &self.queues {
            for id in q {
                if let Some(qs) = self.queries.get(id) {
                    consider(qs.deadline_us);
                }
            }
        }
        for (deadline, _) in self.running_tokens.values() {
            consider(*deadline);
        }
        for (_, ready) in self.epochs.values() {
            consider(*ready);
        }
        wake
    }

    /// True when nothing is queued, running, or awaiting retry.
    pub fn is_idle(&self) -> bool {
        self.running_tokens.is_empty()
            && self.timers.is_empty()
            && self.total_queued() == 0
            && self.actions.is_empty()
    }

    /// Terminal outcomes in decision order.
    pub fn outcomes(&self) -> &[(u64, Outcome)] {
        &self.outcomes
    }

    /// The event log as canonical bytes — the determinism surface:
    /// byte-identical across runs for the same config, seed, and
    /// virtual-time driver.
    pub fn log_bytes(&self) -> Vec<u8> {
        let mut out = self.log.join("\n").into_bytes();
        out.push(b'\n');
        out
    }

    /// Accumulated per-tier tallies.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Times any epoch breaker tripped open.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// The request-scoped trace collection (span trees, exemplars).
    pub fn witness(&self) -> &Witness {
        &self.witness
    }

    /// Moves the witness out for a report, leaving a disabled one
    /// behind (avoids cloning every span tree at end of run).
    pub fn take_witness(&mut self) -> Witness {
        std::mem::replace(&mut self.witness, Witness::new(WitnessConfig::off()))
    }

    /// The SLO engine (burn rates, budgets, alert log).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The anomaly flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The SLO alert log as canonical bytes (see
    /// [`SloEngine::alert_bytes`]).
    pub fn alert_bytes(&self) -> Vec<u8> {
        self.slo.alert_bytes()
    }

    /// Exports per-tier latency histograms and tallies on the
    /// telemetry engine plane (`serve.tier.<tier>.*`,
    /// `serve.breaker.trips`), plus the witness's per-segment-kind
    /// aggregates (`serve.seg.*`).
    pub fn export_metrics(&self, tel: &mut Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        for t in Tier::ALL {
            let i = t.index();
            let hist = tel.hist(
                &format!("serve.tier.{}.latency_us", t.name()),
                Plane::Engine,
            );
            tel.record_hist(hist, &self.stats.latency_us[i]);
            for (metric, v) in [
                ("submitted", self.stats.submitted[i]),
                ("done", self.stats.done[i]),
                ("expired", self.stats.expired[i]),
                ("shed", self.stats.sheds(t)),
                ("failed", self.stats.failed[i]),
                ("retries", self.stats.retries[i]),
            ] {
                tel.count(
                    &format!("serve.tier.{}.{metric}", t.name()),
                    Plane::Engine,
                    v,
                );
            }
        }
        tel.count("serve.breaker.trips", Plane::Engine, self.breaker_trips);
        tel.count(
            "serve.slo.alerts_fired",
            Plane::Engine,
            self.slo.alerts_fired(),
        );
        self.witness.export_telemetry(tel);
    }
}
