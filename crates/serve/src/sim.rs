//! Virtual-time driver: open-loop arrivals, a block-granular cost
//! model, and replayable overload experiments.
//!
//! [`ServeSim`] drives a [`Service`] entirely in virtual microseconds:
//! arrivals are pre-generated from a seed (open-loop — the arrival
//! process never slows down because the service is struggling, which is
//! what makes overload *overload*), and each dispatched attempt's
//! completion is computed from a cost model instead of a wall clock.
//! The result is an overload experiment that runs thousands of
//! simulated seconds in milliseconds and is byte-replayable: same seed,
//! same config → identical event log, identical shed/retry/breaker
//! sequences.
//!
//! With [`ExecMode::Inline`] the sim *also* executes each completed
//! query for real (through the single-flight result cache) at its
//! virtual completion instant — the bridge that lets the equivalence
//! test assert served bytes are identical to direct library calls.

use crate::epoch::Epoch;
use crate::epoch::TableId;
use crate::plan::{table_bytes, AggSpec, CmpOp, FilterSpec, GroupSpec, PlanSpec};
use crate::service::{
    Action, AttemptResult, Outcome, QueryRequest, ServeConfig, Service, ServiceStats,
};
use crate::slo::SloBudget;
use crate::tier::{AdmissionConfig, Tier, TierPolicy};
use crate::witness::Witness;
use borg_query::cache::ResultCache;
use borg_query::fxhash::FxHasher;
use borg_query::CacheStats;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::hash::Hasher;
use std::sync::Arc;

/// How the sim realizes a completed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Timing only: outcomes are decided by the cost model, no query
    /// actually runs. The mode for overload sweeps.
    Model,
    /// Timing from the cost model, plus real execution (through the
    /// result cache) for every completion. The mode for equivalence
    /// proofs.
    Inline,
}

/// Virtual execution-cost model, in µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCost {
    /// Fixed per-attempt setup cost.
    pub overhead_us: u64,
    /// Cost per 64 Ki-row engine block; also the granularity at which
    /// cooperative cancellation is observed.
    pub block_us: u64,
}

impl Default for ModelCost {
    fn default() -> ModelCost {
        ModelCost {
            overhead_us: 200,
            block_us: 1_000,
        }
    }
}

/// Open-loop workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Seed for gaps, tiers, and plan choices.
    pub seed: u64,
    /// Total queries to generate.
    pub queries: usize,
    /// Mean exponential inter-arrival gap, µs.
    pub mean_gap_us: f64,
    /// Tier weights `[prod, batch, best_effort]` (normalized).
    pub tier_mix: [f64; 3],
    /// Epoch names to target (cycled by seeded draw).
    pub epochs: Vec<String>,
}

/// A small family of representative plans the workload draws from:
/// scans, filters, and group-bys over all four trace tables.
pub fn plan_catalog() -> Vec<PlanSpec> {
    let mut plans = vec![
        PlanSpec::scan(TableId::MachineEvents),
        PlanSpec {
            table: TableId::InstanceEvents,
            filter: Some(FilterSpec {
                column: "priority".into(),
                op: CmpOp::Ge,
                value: 103,
            }),
            group: Some(GroupSpec {
                keys: vec!["tier".into()],
                agg: AggSpec::CountAll,
            }),
            sort: Some(("n".into(), true)),
            limit: None,
        },
        PlanSpec {
            table: TableId::CollectionEvents,
            filter: None,
            group: Some(GroupSpec {
                keys: vec!["event".into()],
                agg: AggSpec::CountAll,
            }),
            sort: Some(("n".into(), true)),
            limit: Some(16),
        },
        PlanSpec {
            table: TableId::Usage,
            filter: Some(FilterSpec {
                column: "start".into(),
                op: CmpOp::Ge,
                value: 0,
            }),
            group: Some(GroupSpec {
                keys: vec!["machine_id".into()],
                agg: AggSpec::Max("avg_cpu".into()),
            }),
            sort: Some(("peak".into(), true)),
            limit: Some(32),
        },
    ];
    // A cheap point-lookup-ish plan to give the cache hits.
    plans.push(PlanSpec {
        table: TableId::MachineEvents,
        filter: Some(FilterSpec {
            column: "machine_id".into(),
            op: CmpOp::Le,
            value: 4,
        }),
        group: None,
        sort: None,
        limit: Some(8),
    });
    plans
}

/// Generates the open-loop arrival schedule: `(arrival µs, request)`
/// pairs in nondecreasing time order, ids sequential from 0. Pure in
/// `spec.seed`.
pub fn generate_arrivals(spec: &WorkloadSpec) -> Vec<(u64, QueryRequest)> {
    let catalog = plan_catalog();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let total: f64 = spec.tier_mix.iter().sum();
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(spec.queries);
    for id in 0..spec.queries as u64 {
        let u: f64 = rng.random();
        t += -spec.mean_gap_us * (1.0 - u).ln();
        let r: f64 = rng.random::<f64>() * total;
        let tier = if r < spec.tier_mix[0] {
            Tier::Prod
        } else if r < spec.tier_mix[0] + spec.tier_mix[1] {
            Tier::Batch
        } else {
            Tier::BestEffort
        };
        let plan = catalog[(rng.random::<u64>() % catalog.len() as u64) as usize].clone();
        let epoch = spec.epochs[(rng.random::<u64>() % spec.epochs.len() as u64) as usize].clone();
        out.push((
            t as u64,
            QueryRequest {
                id,
                tier,
                epoch,
                plan,
            },
        ));
    }
    out
}

/// Everything a sim run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Per-tier tallies.
    pub stats: ServiceStats,
    /// Terminal outcome per query id, decision order.
    pub outcomes: Vec<(u64, Outcome)>,
    /// Canonical event-log bytes (the determinism surface).
    pub log: Vec<u8>,
    /// Rendered result bytes per completed id ([`ExecMode::Inline`]
    /// only; empty in model mode).
    pub results: BTreeMap<u64, Vec<u8>>,
    /// Result-cache tallies (inline mode).
    pub cache: CacheStats,
    /// Times any epoch breaker tripped open.
    pub breaker_trips: u64,
    /// Final virtual time, µs.
    pub horizon_us: u64,
    /// The full trace collection (span trees, exemplars).
    pub witness: Witness,
    /// SLO alert/resolve lines, time order (deterministic).
    pub alerts: Vec<String>,
    /// Flight-recorder dump bytes (deterministic).
    pub recorder_dump: Vec<u8>,
    /// Cumulative per-tier error-budget ledgers.
    pub budgets: [SloBudget; 3],
}

impl SimReport {
    /// Canonical witness export bytes (byte-identity surface).
    /// Rendered on demand so the timed run doesn't pay for it.
    pub fn trace_export(&self) -> Vec<u8> {
        self.witness.export_bytes()
    }

    /// Sorted ids whose outcome matches `f`.
    pub fn ids_where(&self, f: impl Fn(&Outcome) -> bool) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|(_, o)| f(o))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// FxHash digest of the event log, for compact comparison.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(&self.log);
        h.finish()
    }
}

/// The virtual-time driver. See the module docs.
pub struct ServeSim {
    /// Execution mode.
    pub exec: ExecMode,
    /// Cost model.
    pub cost: ModelCost,
    /// Result-cache capacity (inline mode).
    pub cache_capacity: usize,
}

impl Default for ServeSim {
    fn default() -> ServeSim {
        ServeSim {
            exec: ExecMode::Model,
            cost: ModelCost::default(),
            cache_capacity: 64,
        }
    }
}

/// Kinds of completion the cost model can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ModelEnd {
    Ok,
    Cancelled,
    Panicked,
}

impl ServeSim {
    /// Runs `arrivals` against a fresh [`Service`] built from `cfg`,
    /// with `epochs` registered at t=0. Returns when every query has a
    /// terminal outcome.
    pub fn run(
        &self,
        cfg: ServeConfig,
        epochs: &[Arc<Epoch>],
        arrivals: &[(u64, QueryRequest)],
    ) -> SimReport {
        let mut service = Service::new(cfg);
        for e in epochs {
            service.register_epoch(0, Arc::clone(e));
        }
        let cache = ResultCache::new(self.cache_capacity.max(1));
        let mut results: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        // (finish_at, seq, id, kind, attempt's epoch+plan for inline).
        let mut completions: BinaryHeap<Reverse<(u64, u64, u64, ModelEnd)>> = BinaryHeap::new();
        let mut pending_exec: BTreeMap<u64, (Arc<Epoch>, PlanSpec)> = BTreeMap::new();
        let mut comp_seq = 0u64;
        let mut ai = 0usize;
        let mut now = 0u64;
        loop {
            // Fixed point at `now`: tick, admit due arrivals, schedule
            // completions for newly started attempts, deliver due
            // completions (which can free capacity and start more
            // attempts), until nothing due at `now` remains.
            service.on_tick(now);
            while arrivals.get(ai).is_some_and(|(at, _)| *at <= now) {
                let (_, req) = &arrivals[ai];
                service.submit(now, req.clone());
                ai += 1;
            }
            loop {
                let mut progressed = false;
                while let Some(Action::Start(att)) = service.next_action() {
                    progressed = true;
                    let blocks = att.plan.cost_blocks(att.epoch.rows(att.plan.table));
                    let mut t = now + self.cost.overhead_us + att.fault.stall_us;
                    let end = if att.fault.panics {
                        // The panic fires one block into execution,
                        // before that block completes (mirrors the real
                        // worker panicking before its scan).
                        t += self.cost.block_us;
                        ModelEnd::Panicked
                    } else {
                        let mut end = ModelEnd::Ok;
                        let mut scanned = 0u64;
                        for _ in 0..blocks {
                            // Cooperative cancellation: the worker
                            // checks the token before each block and
                            // the service cancels it at the deadline.
                            if t >= att.deadline_us {
                                end = ModelEnd::Cancelled;
                                break;
                            }
                            t += self.cost.block_us;
                            scanned += 1;
                        }
                        // Mirror the engine's per-block token notes so
                        // the witness attributes block-scan progress in
                        // model mode too.
                        att.cancel.add_blocks(scanned);
                        end
                    };
                    if end == ModelEnd::Ok && self.exec == ExecMode::Inline {
                        pending_exec.insert(att.id, (Arc::clone(&att.epoch), att.plan.clone()));
                    }
                    comp_seq += 1;
                    completions.push(Reverse((t, comp_seq, att.id, end)));
                }
                while completions
                    .peek()
                    .is_some_and(|Reverse((at, _, _, _))| *at <= now)
                {
                    progressed = true;
                    // lint: library-panic-ok (peek above proved non-empty) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
                    let Reverse((_, _, id, end)) = completions.pop().expect("peeked completion");
                    if end == ModelEnd::Ok {
                        if let Some((epoch, plan)) = pending_exec.remove(&id) {
                            let key = (epoch.seq, plan.fingerprint());
                            let table = epoch.table(plan.table).clone();
                            if let Ok((t, _)) =
                                cache.get_or_compute(key, || plan.execute(table, None))
                            {
                                results.insert(id, table_bytes(&t));
                            }
                        }
                    }
                    let result = match end {
                        ModelEnd::Ok => AttemptResult::Ok,
                        ModelEnd::Cancelled => AttemptResult::Cancelled,
                        ModelEnd::Panicked => AttemptResult::Panicked,
                    };
                    service.on_attempt_done(now, id, result);
                }
                if !progressed {
                    break;
                }
            }
            // Advance to the next strictly-future event.
            let mut next: Option<u64> = None;
            let mut consider = |t: u64| {
                next = Some(next.map_or(t, |n| n.min(t)));
            };
            if let Some((at, _)) = arrivals.get(ai) {
                consider(*at);
            }
            if let Some(Reverse((at, _, _, _))) = completions.peek() {
                consider(*at);
            }
            if let Some(w) = service.next_wake(now) {
                consider(w);
            }
            let Some(next) = next else {
                break; // No arrivals, completions, or wakes left.
            };
            debug_assert!(next > now, "virtual time must advance");
            now = now.max(next);
        }
        let budgets = [
            service.slo().budget(Tier::Prod),
            service.slo().budget(Tier::Batch),
            service.slo().budget(Tier::BestEffort),
        ];
        SimReport {
            stats: service.stats().clone(),
            outcomes: service.outcomes().to_vec(),
            log: service.log_bytes(),
            results,
            cache: cache.stats(),
            breaker_trips: service.breaker_trips(),
            horizon_us: now,
            alerts: service.slo().alert_lines().to_vec(),
            recorder_dump: service.recorder().dump_bytes(),
            witness: service.take_witness(),
            budgets,
        }
    }
}

/// Admission profile used by the overload bench: dedicated quotas
/// 3/3/2, deadlines 150 ms / 400 ms / 800 ms, retry budgets 3/2/1,
/// and queue bounds that force bottom-up shedding under saturation.
pub fn overload_admission() -> AdmissionConfig {
    AdmissionConfig {
        tiers: [
            TierPolicy {
                workers: 3,
                queue_cap: 64,
                deadline_us: 150_000,
                max_attempts: 3,
            },
            TierPolicy {
                workers: 3,
                queue_cap: 48,
                deadline_us: 400_000,
                max_attempts: 2,
            },
            TierPolicy {
                workers: 2,
                queue_cap: 16,
                deadline_us: 800_000,
                max_attempts: 1,
            },
        ],
        global_queue_cap: 72,
    }
}

/// Mean inter-arrival gap (µs) that loads `admission`'s total worker
/// capacity by `load_factor` (2.0 = twice saturation), given the cost
/// model, the chaos stall profile, and the average per-query block
/// count.
pub fn open_loop_gap_us(
    admission: &AdmissionConfig,
    cost: &ModelCost,
    chaos: &crate::chaos::ChaosConfig,
    avg_blocks: f64,
    load_factor: f64,
) -> f64 {
    let workers: usize = admission.tiers.iter().map(|t| t.workers).sum();
    let mean_stall = if chaos.enabled {
        chaos.stall_prob * (chaos.stall_us.0 + chaos.stall_us.1) as f64 / 2.0
    } else {
        0.0
    };
    let service_us = cost.overhead_us as f64 + avg_blocks * cost.block_us as f64 + mean_stall;
    // capacity (queries/µs) = workers / service_us; gap = 1 / (load · capacity)
    service_us / (workers as f64 * load_factor.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use borg_core::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    fn tiny_epoch() -> Arc<Epoch> {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        Arc::new(Epoch::from_trace("a", 0, &outcome.trace).unwrap())
    }

    fn light_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            queries: 60,
            mean_gap_us: 2_000.0,
            tier_mix: [0.3, 0.4, 0.3],
            epochs: vec!["a".into()],
        }
    }

    #[test]
    fn arrivals_are_seed_pure_and_ordered() {
        let a = generate_arrivals(&light_spec(3));
        let b = generate_arrivals(&light_spec(3));
        assert_eq!(a.len(), 60);
        for ((ta, ra), (tb, rb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.tier, rb.tier);
            assert_eq!(ra.plan.fingerprint(), rb.plan.fingerprint());
        }
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
        let c = generate_arrivals(&light_spec(4));
        assert!(a.iter().zip(&c).any(|((ta, _), (tc, _))| ta != tc));
    }

    #[test]
    fn light_load_without_chaos_completes_everything() {
        let epoch = tiny_epoch();
        let arrivals = generate_arrivals(&light_spec(7));
        let report = ServeSim::default().run(ServeConfig::small(7), &[epoch], &arrivals);
        let done = report.ids_where(|o| matches!(o, Outcome::Done { .. }));
        assert_eq!(done.len(), 60, "everything completes: {:?}", report.stats);
        assert_eq!(report.stats.sheds(Tier::Prod), 0);
        assert_eq!(report.stats.sheds(Tier::Batch), 0);
        assert_eq!(report.stats.sheds(Tier::BestEffort), 0);
    }

    #[test]
    fn chaotic_runs_are_byte_replayable() {
        let epoch = tiny_epoch();
        let mut cfg = ServeConfig::small(11);
        cfg.chaos = ChaosConfig {
            // A panic rate high enough that ~150 executed attempts
            // produce retries with near-certainty for any seed.
            panic_prob: 0.10,
            ..ChaosConfig::moderate(11)
        };
        let spec = WorkloadSpec {
            queries: 200,
            mean_gap_us: 400.0,
            ..light_spec(11)
        };
        let arrivals = generate_arrivals(&spec);
        let sim = ServeSim::default();
        let r1 = sim.run(cfg.clone(), std::slice::from_ref(&epoch), &arrivals);
        let r2 = sim.run(cfg, std::slice::from_ref(&epoch), &arrivals);
        assert_eq!(r1.log, r2.log, "event log is byte-identical");
        assert_eq!(r1.digest(), r2.digest());
        assert!(
            r1.stats.retries.iter().sum::<u64>() > 0,
            "chaos induced at least one retry"
        );
    }

    #[test]
    fn inline_mode_returns_real_results_through_the_cache() {
        let epoch = tiny_epoch();
        let arrivals = generate_arrivals(&light_spec(5));
        let sim = ServeSim {
            exec: ExecMode::Inline,
            ..ServeSim::default()
        };
        let report = sim.run(
            ServeConfig::small(5),
            std::slice::from_ref(&epoch),
            &arrivals,
        );
        assert_eq!(report.results.len(), 60);
        for (id, bytes) in &report.results {
            let (_, req) = arrivals
                .iter()
                .find(|(_, r)| r.id == *id)
                .expect("arrival for id");
            let table = epoch.table(req.plan.table).clone();
            let direct = req.plan.execute(table, None).unwrap();
            assert_eq!(bytes, &table_bytes(&direct), "query {id} bytes differ");
        }
        // 60 queries over a 5-plan catalog: the cache deduplicated.
        assert!(report.cache.misses <= 5, "cache stats: {:?}", report.cache);
        assert_eq!(
            report.cache.hits + report.cache.coalesced + report.cache.misses,
            60
        );
    }
}
