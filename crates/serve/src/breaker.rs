//! Per-epoch circuit breaker.
//!
//! When an epoch's queries start panicking consecutively (a poisoned
//! epoch, a plan that trips a data bug), retrying every request against
//! it burns worker capacity that healthy epochs need. The breaker
//! converts that failure mode into fast, cheap rejections: after
//! `threshold` consecutive failures it **opens** for `cooloff_us`, then
//! **half-opens** to let probe traffic through — one success closes it,
//! one failure re-opens it.
//!
//! The service consults the breaker only for non-prod admissions: prod
//! traffic always passes (its protection is the retry budget), so an
//! open breaker sheds the tiers that are designed to be sheddable.

/// Observable breaker state at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: non-prod requests are shed until the cooloff elapses.
    Open,
    /// Cooloff elapsed: probe traffic allowed; next result decides.
    HalfOpen,
}

/// Consecutive-failure circuit breaker (virtual-time, sans-io).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooloff_us: u64,
    consecutive_failures: u32,
    /// When `Some`, the breaker tripped at that time and is Open until
    /// `opened_at + cooloff_us`, HalfOpen after.
    opened_at: Option<u64>,
    trips: u64,
}

impl CircuitBreaker {
    /// Trips after `threshold` consecutive failures; probes again after
    /// `cooloff_us`.
    pub fn new(threshold: u32, cooloff_us: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooloff_us,
            consecutive_failures: 0,
            opened_at: None,
            trips: 0,
        }
    }

    /// State as of `now_us`.
    pub fn state(&self, now_us: u64) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now_us < at.saturating_add(self.cooloff_us) => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        }
    }

    /// Whether a (non-prod) request may be dispatched at `now_us`.
    pub fn allows(&self, now_us: u64) -> bool {
        self.state(now_us) != BreakerState::Open
    }

    /// Records a successful attempt: closes the breaker. Returns
    /// `true` when this success closed a tripped breaker (a half-open
    /// probe succeeded).
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.opened_at.take().is_some()
    }

    /// Records a failed attempt at `now_us`. Returns `true` when this
    /// failure trips the breaker open (including a failed half-open
    /// probe re-opening it).
    pub fn record_failure(&mut self, now_us: u64) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let was_open = self.opened_at.is_some() && self.state(now_us) != BreakerState::HalfOpen;
        if self.consecutive_failures >= self.threshold && !was_open {
            self.opened_at = Some(now_us);
            self.trips += 1;
            return true;
        }
        false
    }

    /// Number of times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_half_opens() {
        let mut b = CircuitBreaker::new(3, 1_000);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert!(!b.record_failure(10));
        assert!(!b.record_failure(20));
        assert!(b.record_failure(30), "third consecutive failure trips");
        assert_eq!(b.state(40), BreakerState::Open);
        assert!(!b.allows(40));
        assert_eq!(b.state(1_030), BreakerState::HalfOpen);
        assert!(b.allows(1_030), "half-open lets a probe through");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_everything() {
        let mut b = CircuitBreaker::new(2, 500);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(2), BreakerState::Open);
        b.record_success();
        assert_eq!(b.state(3), BreakerState::Closed);
        // Counter restarted: one failure is below threshold again.
        assert!(!b.record_failure(4));
        assert_eq!(b.state(5), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(1, 100);
        assert!(b.record_failure(0));
        assert_eq!(b.state(150), BreakerState::HalfOpen);
        assert!(b.record_failure(150), "failed probe re-trips");
        assert_eq!(b.state(200), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }
}
