//! The streaming worker pool behind the real (wall-clock) service.
//!
//! Unlike `borg_sim`'s batch-synchronous `WorkerPool` (dispatch a
//! batch, wait for all of it), a service needs a *streaming* pool:
//! jobs are submitted one at a time as the admission layer releases
//! them, and results are polled as they land. The same channel
//! discipline applies — every message is a tagged tuple, results carry
//! the query id so completion order cannot scramble attribution — plus
//! the robustness lessons the batch pool learned the hard way:
//!
//! * the worker loop wraps every job in `catch_unwind`, so a panicking
//!   query (chaos or real) becomes a [`JobResult::Panicked`] message
//!   instead of a dead worker and a deadlocked caller;
//! * jobs are assigned to *idle* workers only (the pool tracks
//!   busyness), so one stalled query never head-of-line blocks another
//!   behind it on the same channel.
//!
//! Dropping the pool hangs up the job channels; workers drain and exit,
//! and `Drop` joins them.

use crate::chaos::Fault;
use crate::epoch::Epoch;
use crate::plan::{table_bytes, PlanSpec};
use borg_query::{CancelToken, QueryError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One execution attempt, as handed to a pool worker.
pub struct ServeJob {
    /// The plan to run.
    pub plan: PlanSpec,
    /// The epoch to run it against.
    pub epoch: Arc<Epoch>,
    /// Cooperative cancellation token (cancelled by the service when
    /// the deadline passes; observed at engine block boundaries).
    pub cancel: CancelToken,
    /// Chaos fault to inject: a real sleep and/or a real panic.
    pub fault: Fault,
}

/// How a pool job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult {
    /// Completed; canonical rendered result bytes.
    Done(Vec<u8>),
    /// The engine observed the cancelled token.
    Cancelled,
    /// The worker panicked (and was caught).
    Panicked,
}

/// Executes one job: injected stall, injected panic, then the real
/// query with the cancellation token threaded into the engine.
pub fn run_serve_job(job: ServeJob) -> JobResult {
    if job.fault.stall_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(job.fault.stall_us));
    }
    let out = catch_unwind(AssertUnwindSafe(|| {
        if job.fault.panics {
            // lint: library-panic-ok (chaos-injected panic, caught just above)
            panic!("chaos: injected worker panic");
        }
        let table = job.epoch.table(job.plan.table).clone();
        job.plan.execute(table, Some(job.cancel.clone()))
    }));
    match out {
        Ok(Ok(t)) => JobResult::Done(table_bytes(&t)),
        Ok(Err(QueryError::Cancelled)) => JobResult::Cancelled,
        // A malformed plan is a worker-side failure, same as a panic.
        Ok(Err(_)) => JobResult::Panicked,
        Err(_) => JobResult::Panicked,
    }
}

/// A fixed set of worker threads executing [`ServeJob`]s one at a time.
/// See the module docs.
pub struct ServePool {
    /// One job channel per worker.
    job_txs: Vec<Sender<(u64, ServeJob)>>,
    /// Tagged results from every worker.
    results: Receiver<(u64, JobResult)>,
    handles: Vec<JoinHandle<()>>,
    busy: Vec<bool>,
    /// Which worker holds each in-flight query id.
    assignment: BTreeMap<u64, usize>,
}

impl ServePool {
    /// Spawns `workers` threads running `run` (normally
    /// [`run_serve_job`]; injectable for tests).
    pub fn new(workers: usize, run: fn(ServeJob) -> JobResult) -> ServePool {
        let (res_tx, results) = channel::<(u64, JobResult)>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<(u64, ServeJob)>();
            let res_tx = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("borg-serve-{w}"))
                .spawn(move || {
                    while let Ok((tag, job)) = rx.recv() {
                        // run() catches job panics itself (see
                        // run_serve_job); a panic here would be a pool
                        // bug, not a job failure.
                        if res_tx.send((tag, run(job))).is_err() {
                            break; // Pool dropped mid-flight.
                        }
                    }
                })
                // lint: library-panic-ok (spawn failure is unrecoverable resource exhaustion)
                .expect("spawn serve worker");
            job_txs.push(tx);
            handles.push(handle);
        }
        ServePool {
            job_txs,
            results,
            handles,
            busy: vec![false; workers],
            assignment: BTreeMap::new(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs submitted but not yet collected.
    pub fn in_flight(&self) -> usize {
        self.assignment.len()
    }

    /// Submits one job to an idle worker. Returns `false` (dropping
    /// the job) if every worker is busy — the admission layer's quotas
    /// are sized to the pool, so this is a caller bug, not overload.
    pub fn submit(&mut self, id: u64, job: ServeJob) -> bool {
        let Some(w) = self.busy.iter().position(|b| !b) else {
            return false;
        };
        // lint: library-panic-ok (workers only exit after this sender drops)
        self.job_txs[w].send((id, job)).expect("serve worker alive");
        self.busy[w] = true;
        self.assignment.insert(id, w);
        true
    }

    /// Collects one finished job, if any.
    pub fn poll(&mut self) -> Option<(u64, JobResult)> {
        match self.results.try_recv() {
            Ok((id, r)) => {
                if let Some(w) = self.assignment.remove(&id) {
                    self.busy[w] = false;
                }
                Some((id, r))
            }
            Err(TryRecvError::Empty) => None,
            // Disconnected would mean every worker died; workers catch
            // job panics, so treat it as drained.
            Err(TryRecvError::Disconnected) => None,
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.job_txs.clear(); // Hang up; workers drain and exit.
        for h in self.handles.drain(..) {
            // Job panics were caught inside run(); never double-panic
            // during drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::TableId;
    use borg_core::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    fn tiny_epoch() -> Arc<Epoch> {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        Arc::new(Epoch::from_trace("a", 0, &outcome.trace).unwrap())
    }

    fn job(epoch: &Arc<Epoch>, fault: Fault) -> ServeJob {
        ServeJob {
            plan: PlanSpec::scan(TableId::MachineEvents),
            epoch: Arc::clone(epoch),
            cancel: CancelToken::new(),
            fault,
        }
    }

    fn drain(pool: &mut ServePool, want: usize) -> Vec<(u64, JobResult)> {
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while got.len() < want {
            if let Some(r) = pool.poll() {
                got.push(r);
            } else {
                assert!(std::time::Instant::now() < deadline, "pool drain timed out");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        got
    }

    #[test]
    fn executes_and_reports_per_id() {
        let epoch = tiny_epoch();
        let mut pool = ServePool::new(2, run_serve_job);
        assert!(pool.submit(7, job(&epoch, Fault::none())));
        assert!(pool.submit(8, job(&epoch, Fault::none())));
        assert_eq!(pool.in_flight(), 2);
        let got = drain(&mut pool, 2);
        let expected = table_bytes(
            &PlanSpec::scan(TableId::MachineEvents)
                .execute(epoch.table(TableId::MachineEvents).clone(), None)
                .unwrap(),
        );
        for (id, r) in got {
            assert!(id == 7 || id == 8);
            assert_eq!(r, JobResult::Done(expected.clone()));
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn chaos_panic_comes_back_as_a_result() {
        let epoch = tiny_epoch();
        let mut pool = ServePool::new(1, run_serve_job);
        assert!(pool.submit(
            1,
            job(
                &epoch,
                Fault {
                    stall_us: 0,
                    panics: true
                }
            )
        ));
        let got = drain(&mut pool, 1);
        assert_eq!(got, vec![(1, JobResult::Panicked)]);
        // The worker survived: a follow-up job still runs.
        assert!(pool.submit(2, job(&epoch, Fault::none())));
        let got = drain(&mut pool, 1);
        assert!(matches!(got[0], (2, JobResult::Done(_))));
    }

    #[test]
    fn cancelled_token_short_circuits() {
        let epoch = tiny_epoch();
        let mut pool = ServePool::new(1, run_serve_job);
        // Cancellation is observed at engine step/block boundaries; a
        // bare scan has no steps, so give the plan a filter.
        let mut j = job(&epoch, Fault::none());
        j.plan.filter = Some(crate::plan::FilterSpec {
            column: "machine_id".into(),
            op: crate::plan::CmpOp::Ge,
            value: 0,
        });
        j.cancel.cancel(); // Deadline already passed at dispatch.
        assert!(pool.submit(3, j));
        let got = drain(&mut pool, 1);
        assert_eq!(got, vec![(3, JobResult::Cancelled)]);
    }

    #[test]
    fn refuses_to_overcommit() {
        let epoch = tiny_epoch();
        let mut pool = ServePool::new(1, run_serve_job);
        assert!(pool.submit(
            1,
            job(
                &epoch,
                Fault {
                    stall_us: 20_000,
                    panics: false
                }
            )
        ));
        assert!(
            !pool.submit(2, job(&epoch, Fault::none())),
            "no idle worker"
        );
        drain(&mut pool, 1);
    }
}
