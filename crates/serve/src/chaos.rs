//! Seeded fault injection for the query service.
//!
//! Extends the trace-pipeline chaos discipline (fault injection →
//! repair → validate, DESIGN.md §11) to the serving layer: worker
//! stalls, panicking queries, and slow epoch loads, all drawn from a
//! seed so every chaotic run is exactly replayable.
//!
//! The key property is *interleaving independence*: the fault for a
//! given `(query id, attempt)` is a pure function of the chaos seed —
//! not of thread scheduling, queue depth, or arrival order. Two runs
//! with the same seed inject byte-identical fault schedules even if the
//! service executes them in different real-time order, which is what
//! makes the shed/retry/breaker determinism contract testable.

use borg_query::fxhash::FxHasher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hash::{Hash, Hasher};

/// The fault injected into one execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fault {
    /// Extra service time (virtual µs in the model, a real sleep in the
    /// threaded pool) injected before the query runs.
    pub stall_us: u64,
    /// Whether the worker panics mid-query on this attempt.
    pub panics: bool,
}

impl Fault {
    /// The no-fault value.
    pub fn none() -> Fault {
        Fault::default()
    }
}

/// Chaos parameters; `ChaosConfig::off()` disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master switch; when false, [`ChaosConfig::fault_for`] always
    /// returns [`Fault::none`] and epoch loads are never slowed.
    pub enabled: bool,
    /// Seed for the per-attempt fault draws.
    pub seed: u64,
    /// Probability an attempt is stalled.
    pub stall_prob: f64,
    /// Stall duration range `[min, max)` in µs.
    pub stall_us: (u64, u64),
    /// Probability an attempt panics (drawn independently of stalls).
    pub panic_prob: f64,
    /// Extra virtual delay before a newly loaded epoch is ready to
    /// serve (the "slow epoch load" fault; 0 = instant).
    pub slow_epoch_us: u64,
}

impl ChaosConfig {
    /// Chaos disabled.
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            enabled: false,
            seed: 0,
            stall_prob: 0.0,
            stall_us: (0, 0),
            panic_prob: 0.0,
            slow_epoch_us: 0,
        }
    }

    /// A moderate profile for tests and the overload bench: 20% stalls
    /// of 2–20 ms, 2% panics, 5 ms slow epoch loads.
    pub fn moderate(seed: u64) -> ChaosConfig {
        ChaosConfig {
            enabled: true,
            seed,
            stall_prob: 0.20,
            stall_us: (2_000, 20_000),
            panic_prob: 0.02,
            slow_epoch_us: 5_000,
        }
    }

    /// The fault injected into attempt `attempt` of query `query_id`.
    /// Pure in `(self.seed, query_id, attempt)`; see the module docs.
    pub fn fault_for(&self, query_id: u64, attempt: u32) -> Fault {
        if !self.enabled {
            return Fault::none();
        }
        let mut h = FxHasher::default();
        (self.seed, query_id, attempt).hash(&mut h);
        let mut rng = StdRng::seed_from_u64(h.finish());
        let stalled = rng.random_bool(self.stall_prob);
        let span = self.stall_us.1.saturating_sub(self.stall_us.0);
        let stall_us = if stalled {
            self.stall_us.0 + (rng.random::<u64>() % span.max(1))
        } else {
            // Keep the draw count fixed so `panics` never depends on
            // whether the stall branch was taken.
            let _ = rng.random::<u64>();
            0
        };
        let panics = rng.random_bool(self.panic_prob);
        Fault { stall_us, panics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_injects_nothing() {
        let c = ChaosConfig::off();
        for id in 0..100 {
            assert_eq!(c.fault_for(id, 0), Fault::none());
        }
    }

    #[test]
    fn faults_are_pure_in_seed_id_attempt() {
        let c = ChaosConfig::moderate(42);
        for id in 0..200u64 {
            for attempt in 0..3 {
                assert_eq!(c.fault_for(id, attempt), c.fault_for(id, attempt));
            }
        }
        // Different attempts of the same query draw independent faults
        // (retries are not doomed to repeat the first attempt's fate).
        let differs = (0..200u64).any(|id| c.fault_for(id, 0) != c.fault_for(id, 1));
        assert!(differs);
        // And a different seed gives a different schedule.
        let c2 = ChaosConfig::moderate(43);
        let schedule =
            |c: &ChaosConfig| (0..200u64).map(|id| c.fault_for(id, 0)).collect::<Vec<_>>();
        assert_ne!(schedule(&c), schedule(&c2));
    }

    #[test]
    fn rates_are_roughly_as_configured() {
        let c = ChaosConfig::moderate(7);
        let n = 10_000u64;
        let stalls = (0..n).filter(|&id| c.fault_for(id, 0).stall_us > 0).count();
        let panics = (0..n).filter(|&id| c.fault_for(id, 0).panics).count();
        let stall_rate = stalls as f64 / n as f64;
        let panic_rate = panics as f64 / n as f64;
        assert!(
            (0.15..0.25).contains(&stall_rate),
            "stall rate {stall_rate}"
        );
        assert!(
            (0.01..0.03).contains(&panic_rate),
            "panic rate {panic_rate}"
        );
    }
}
