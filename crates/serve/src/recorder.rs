//! Flight recorder: a bounded ring of recent service events that
//! snapshots itself when something anomalous happens.
//!
//! Aggregate metrics say *that* a run went bad; the flight recorder
//! preserves *what the service was doing at that moment*. Every event-
//! log line is mirrored into a bounded ring buffer, and four anomaly
//! triggers — a prod deadline miss, a circuit breaker opening, a shed
//! spike, a burn-rate alert — freeze a copy of the ring. Snapshot
//! budgets are capped per trigger kind and in total, so a sustained
//! incident produces a handful of representative captures instead of
//! an unbounded dump.
//!
//! Everything is a pure function of the (deterministic) event stream
//! and time values the service feeds in, so the full recorder dump is
//! byte-identical across same-seed runs — it is part of the
//! determinism surface pinned by `tests/serve_witness.rs`.

use std::collections::VecDeque;

/// What tripped a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// A prod-tier request expired (missed its deadline).
    ProdDeadlineMiss,
    /// An epoch's circuit breaker opened.
    BreakerOpen,
    /// Sheds clustered faster than the configured spike threshold.
    ShedSpike,
    /// The SLO engine fired a burn-rate alert.
    BurnRate,
}

impl TriggerKind {
    /// All trigger kinds, stable order.
    pub const ALL: [TriggerKind; 4] = [
        TriggerKind::ProdDeadlineMiss,
        TriggerKind::BreakerOpen,
        TriggerKind::ShedSpike,
        TriggerKind::BurnRate,
    ];

    /// Stable token for dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::ProdDeadlineMiss => "prod_deadline_miss",
            TriggerKind::BreakerOpen => "breaker_open",
            TriggerKind::ShedSpike => "shed_spike",
            TriggerKind::BurnRate => "burn_rate",
        }
    }

    /// Index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            TriggerKind::ProdDeadlineMiss => 0,
            TriggerKind::BreakerOpen => 1,
            TriggerKind::ShedSpike => 2,
            TriggerKind::BurnRate => 3,
        }
    }
}

/// Recorder tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Whether anything is recorded (off = all no-ops).
    pub enabled: bool,
    /// Ring capacity in event lines.
    pub ring_capacity: usize,
    /// Window for the shed-spike trigger, µs.
    pub shed_window_us: u64,
    /// Sheds within the window that count as a spike.
    pub shed_spike_threshold: usize,
    /// Snapshot budget per trigger kind.
    pub per_trigger_cap: usize,
    /// Snapshot budget across all kinds.
    pub total_cap: usize,
}

impl RecorderConfig {
    /// A disabled recorder.
    pub fn off() -> RecorderConfig {
        RecorderConfig {
            enabled: false,
            ring_capacity: 0,
            shed_window_us: 1,
            shed_spike_threshold: usize::MAX,
            per_trigger_cap: 0,
            total_cap: 0,
        }
    }

    /// The standard profile: a 64-line ring, shed spike at 8 sheds in
    /// 100 ms, at most 2 snapshots per trigger kind and 6 overall.
    pub fn standard() -> RecorderConfig {
        RecorderConfig {
            enabled: true,
            ring_capacity: 64,
            shed_window_us: 100_000,
            shed_spike_threshold: 8,
            per_trigger_cap: 2,
            total_cap: 6,
        }
    }
}

/// One frozen capture of the ring.
#[derive(Debug, Clone)]
pub struct RecorderSnapshot {
    /// What tripped it.
    pub trigger: TriggerKind,
    /// When it tripped, µs.
    pub at_us: u64,
    /// The ring's contents at that instant, oldest first.
    pub lines: Vec<String>,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    ring: VecDeque<String>,
    /// Recent shed times for the spike trigger.
    sheds: VecDeque<u64>,
    /// Triggers observed per kind (counted even when the snapshot
    /// budget is spent).
    observed: [u64; 4],
    snapshots: Vec<RecorderSnapshot>,
}

impl FlightRecorder {
    /// A fresh recorder.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            ring: VecDeque::new(),
            sheds: VecDeque::new(),
            observed: [0; 4],
            snapshots: Vec::new(),
        }
    }

    /// Mirrors one event-log line into the ring.
    pub fn push(&mut self, line: &str) {
        if !self.cfg.enabled {
            return;
        }
        if self.ring.len() >= self.cfg.ring_capacity.max(1) {
            // Reuse the evicted entry's buffer: once the ring is warm,
            // pushing a line allocates nothing.
            if let Some(mut s) = self.ring.pop_front() {
                s.clear();
                s.push_str(line);
                self.ring.push_back(s);
            }
        } else {
            self.ring.push_back(line.to_string());
        }
    }

    /// Notes one shed; fires the shed-spike trigger when the window
    /// fills past the threshold (then resets the window so a sustained
    /// shed storm re-arms instead of firing per shed).
    pub fn note_shed(&mut self, now_us: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.sheds.push_back(now_us);
        let from = now_us.saturating_sub(self.cfg.shed_window_us);
        while self.sheds.front().is_some_and(|&at| at < from) {
            self.sheds.pop_front();
        }
        if self.sheds.len() >= self.cfg.shed_spike_threshold {
            self.sheds.clear();
            self.trigger(now_us, TriggerKind::ShedSpike);
        }
    }

    /// Records an anomaly; snapshots the ring if budgets allow.
    /// Returns `true` when a snapshot was actually taken.
    pub fn trigger(&mut self, now_us: u64, kind: TriggerKind) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.observed[kind.index()] += 1;
        let taken = self.snapshots.iter().filter(|s| s.trigger == kind).count();
        if taken >= self.cfg.per_trigger_cap || self.snapshots.len() >= self.cfg.total_cap {
            return false;
        }
        self.snapshots.push(RecorderSnapshot {
            trigger: kind,
            at_us: now_us,
            lines: self.ring.iter().cloned().collect(),
        });
        true
    }

    /// Frozen captures, trigger order.
    pub fn snapshots(&self) -> &[RecorderSnapshot] {
        &self.snapshots
    }

    /// Times each trigger kind was observed (with or without budget).
    pub fn observed(&self, kind: TriggerKind) -> u64 {
        self.observed[kind.index()]
    }

    /// The whole recorder state as canonical bytes — header, per-kind
    /// observation counts, then each snapshot with its lines. Part of
    /// the determinism surface.
    pub fn dump_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(&format!("recorder {} snapshot(s)\n", self.snapshots.len()));
        for kind in TriggerKind::ALL {
            out.push_str(&format!(
                "observed {} {}\n",
                kind.name(),
                self.observed[kind.index()]
            ));
        }
        for (i, s) in self.snapshots.iter().enumerate() {
            out.push_str(&format!(
                "-- snapshot {} {} at {} ({} lines)\n",
                i + 1,
                s.trigger.name(),
                s.at_us,
                s.lines.len()
            ));
            for line in &s.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_fifo() {
        let mut r = FlightRecorder::new(RecorderConfig {
            ring_capacity: 3,
            ..RecorderConfig::standard()
        });
        for k in 0..5 {
            r.push(&format!("line {k}"));
        }
        r.trigger(100, TriggerKind::BreakerOpen);
        let snap = &r.snapshots()[0];
        assert_eq!(snap.lines, vec!["line 2", "line 3", "line 4"]);
    }

    #[test]
    fn budgets_cap_snapshots_but_not_observation_counts() {
        let mut r = FlightRecorder::new(RecorderConfig {
            per_trigger_cap: 2,
            total_cap: 3,
            ..RecorderConfig::standard()
        });
        r.push("x");
        assert!(r.trigger(1, TriggerKind::ProdDeadlineMiss));
        assert!(r.trigger(2, TriggerKind::ProdDeadlineMiss));
        assert!(!r.trigger(3, TriggerKind::ProdDeadlineMiss), "per-kind cap");
        assert!(r.trigger(4, TriggerKind::BreakerOpen));
        assert!(!r.trigger(5, TriggerKind::BurnRate), "total cap");
        assert_eq!(r.observed(TriggerKind::ProdDeadlineMiss), 3);
        assert_eq!(r.observed(TriggerKind::BurnRate), 1);
        assert_eq!(r.snapshots().len(), 3);
    }

    #[test]
    fn shed_spike_fires_at_threshold_then_rearms() {
        let mut r = FlightRecorder::new(RecorderConfig {
            shed_window_us: 1_000,
            shed_spike_threshold: 3,
            ..RecorderConfig::standard()
        });
        r.note_shed(10);
        r.note_shed(20);
        assert_eq!(r.observed(TriggerKind::ShedSpike), 0);
        r.note_shed(30);
        assert_eq!(r.observed(TriggerKind::ShedSpike), 1);
        // The window cleared: two more sheds stay quiet, the third fires.
        r.note_shed(40);
        r.note_shed(50);
        assert_eq!(r.observed(TriggerKind::ShedSpike), 1);
        r.note_shed(60);
        assert_eq!(r.observed(TriggerKind::ShedSpike), 2);
    }

    #[test]
    fn spread_out_sheds_never_spike() {
        let mut r = FlightRecorder::new(RecorderConfig {
            shed_window_us: 100,
            shed_spike_threshold: 3,
            ..RecorderConfig::standard()
        });
        for k in 0..20u64 {
            r.note_shed(k * 1_000);
        }
        assert_eq!(r.observed(TriggerKind::ShedSpike), 0);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = FlightRecorder::new(RecorderConfig::off());
        r.push("x");
        r.note_shed(1);
        assert!(!r.trigger(2, TriggerKind::BreakerOpen));
        assert!(r.snapshots().is_empty());
        let dump = String::from_utf8(r.dump_bytes()).unwrap_or_default();
        assert!(dump.starts_with("recorder 0 snapshot(s)"));
    }

    #[test]
    fn dump_is_deterministic_for_identical_feeds() {
        let feed = |r: &mut FlightRecorder| {
            for k in 0..10 {
                r.push(&format!("{k} a {k}"));
            }
            r.trigger(9, TriggerKind::BurnRate);
        };
        let mut a = FlightRecorder::new(RecorderConfig::standard());
        let mut b = FlightRecorder::new(RecorderConfig::standard());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.dump_bytes(), b.dump_bytes());
        assert!(!a.dump_bytes().is_empty());
    }
}
