//! Per-tier SLO objectives, multi-window burn-rate alerting, and
//! error-budget accounting.
//!
//! The observability question DESIGN.md §17 answers is "did the
//! service keep its promises over this run" — not per query, but per
//! tier. Each tier carries an objective ("`target` of requests
//! complete within `latency_us`") and the engine classifies every
//! terminal outcome as *good* (done within the objective) or *bad*
//! (late, expired, shed, or failed). From those events it computes the
//! SRE-standard **burn rate**: the rate at which the error budget
//! (`1 - target`) is being consumed, where burn 1.0 means "spending
//! the budget exactly as fast as the objective allows".
//!
//! Alerting uses the **multi-window** discipline: an alert fires only
//! when *both* a long window (is the problem real?) and a short window
//! (is it still happening?) burn above the threshold, and resolves
//! when the long window recovers. That makes alerts insensitive to
//! blips but fast to fire during a genuine incident — and, because the
//! engine is driven entirely by (virtual or blessed) time values fed
//! through the service, the full alert sequence is deterministic and
//! byte-replayable under the same seed.
//!
//! Nothing here reads a clock or allocates per-event beyond the sliding
//! window; the engine is sans-io like the [`crate::service::Service`]
//! it observes.

use crate::tier::{AdmissionConfig, Tier};
use std::collections::VecDeque;

/// Objective for one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSlo {
    /// Latency objective: a request is *good* when it completes within
    /// this budget, µs.
    pub latency_us: u64,
    /// Success target in `[0, 1)`: the fraction of requests that must
    /// be good. The error budget is `1 - target`.
    pub target: f64,
}

/// Full SLO-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Whether the engine evaluates anything (off = all no-ops).
    pub enabled: bool,
    /// Per-tier objectives, indexed by [`Tier::index`].
    pub tiers: [TierSlo; 3],
    /// Short evaluation window ("is it still happening"), µs.
    pub short_window_us: u64,
    /// Long evaluation window ("is it real"), µs.
    pub long_window_us: u64,
    /// Burn rate both windows must exceed for an alert to fire.
    pub burn_threshold: f64,
    /// Minimum events in the long window before burn is meaningful
    /// (guards against one bad request firing an alert at startup).
    pub min_events: u64,
}

impl SloConfig {
    /// A disabled engine: no objectives, no alerts.
    pub fn off() -> SloConfig {
        SloConfig {
            enabled: false,
            tiers: [TierSlo {
                latency_us: u64::MAX,
                target: 0.0,
            }; 3],
            short_window_us: 1,
            long_window_us: 1,
            burn_threshold: f64::MAX,
            min_events: u64::MAX,
        }
    }

    /// Objectives derived from an admission profile: each tier's
    /// latency objective is its deadline, targets come from
    /// [`Tier::default_slo_target`], and the windows scale with the
    /// slowest deadline (long = 8×, short = long/8) so the engine works
    /// unchanged across the virtual-time and wall-clock harnesses.
    pub fn for_admission(adm: &AdmissionConfig) -> SloConfig {
        let max_deadline = adm
            .tiers
            .iter()
            .map(|t| t.deadline_us)
            .max()
            .unwrap_or(1_000_000);
        let long_window_us = max_deadline.saturating_mul(8).max(8);
        SloConfig {
            enabled: true,
            tiers: [
                TierSlo {
                    latency_us: adm.tiers[0].deadline_us,
                    target: Tier::Prod.default_slo_target(),
                },
                TierSlo {
                    latency_us: adm.tiers[1].deadline_us,
                    target: Tier::Batch.default_slo_target(),
                },
                TierSlo {
                    latency_us: adm.tiers[2].deadline_us,
                    target: Tier::BestEffort.default_slo_target(),
                },
            ],
            short_window_us: long_window_us / 8,
            long_window_us,
            burn_threshold: 2.0,
            min_events: 10,
        }
    }
}

/// Cumulative error-budget ledger for one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBudget {
    /// Terminal outcomes observed.
    pub total: u64,
    /// Outcomes that violated the objective.
    pub bad: u64,
    /// Bad outcomes the target allows for this many totals
    /// (`(1 - target) * total`).
    pub allowed: f64,
}

impl SloBudget {
    /// Fraction of the error budget remaining (negative when blown,
    /// 1.0 when untouched or no events yet).
    pub fn remaining_frac(&self) -> f64 {
        if self.allowed <= 0.0 {
            if self.bad == 0 {
                1.0
            } else {
                -(self.bad as f64)
            }
        } else {
            1.0 - self.bad as f64 / self.allowed
        }
    }
}

/// The multi-window burn-rate evaluator. Feed it every terminal
/// outcome via [`SloEngine::on_event`]; read the deterministic alert
/// log via [`SloEngine::alert_lines`].
#[derive(Debug, Clone)]
pub struct SloEngine {
    cfg: SloConfig,
    /// Long-window events per tier: (time µs, good), pruned to the
    /// long window on every feed.
    events: [VecDeque<(u64, bool)>; 3],
    /// Short-window copies of the same events, pruned to the short
    /// window.
    short_events: [VecDeque<(u64, bool)>; 3],
    /// Running (total, bad) tallies kept in lockstep with each deque,
    /// so burn evaluation is O(1) per event instead of a window scan.
    long_counts: [(u64, u64); 3],
    short_counts: [(u64, u64); 3],
    /// Cumulative good/bad tallies per tier.
    good: [u64; 3],
    bad: [u64; 3],
    /// Alert hysteresis: true while an alert is active for the tier.
    active: [bool; 3],
    /// Deterministic alert log: fire and resolve lines in time order.
    alerts: Vec<String>,
    fired: u64,
}

impl SloEngine {
    /// A fresh engine.
    pub fn new(cfg: SloConfig) -> SloEngine {
        SloEngine {
            cfg,
            events: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            short_events: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            long_counts: [(0, 0); 3],
            short_counts: [(0, 0); 3],
            good: [0; 3],
            bad: [0; 3],
            active: [false; 3],
            alerts: Vec::new(),
            fired: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Classifies a completion latency against the tier's objective.
    pub fn is_good_latency(&self, t: Tier, latency_us: u64) -> bool {
        latency_us <= self.cfg.tiers[t.index()].latency_us
    }

    /// Burn rate from a window's running (total, bad) counters: bad
    /// fraction divided by the error budget. 0.0 with no events.
    fn burn_of(&self, i: usize, counts: (u64, u64)) -> f64 {
        let (total, bad) = counts;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.cfg.tiers[i].target).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Drops events at or before `from` off a window's front, keeping
    /// its counters in lockstep. `from == 0` means "window covers
    /// everything so far" (matches the burn semantics at startup).
    fn prune(dq: &mut VecDeque<(u64, bool)>, counts: &mut (u64, u64), from: u64) {
        if from == 0 {
            return;
        }
        while let Some(&(at, good)) = dq.front() {
            if at > from {
                break;
            }
            dq.pop_front();
            counts.0 -= 1;
            if !good {
                counts.1 -= 1;
            }
        }
    }

    /// Feeds one terminal outcome. Returns `true` when this event
    /// *fires* a new alert (the flight recorder's burn-rate trigger).
    pub fn on_event(&mut self, now_us: u64, t: Tier, good: bool) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let i = t.index();
        if good {
            self.good[i] += 1;
        } else {
            self.bad[i] += 1;
        }
        for (dq, counts) in [
            (&mut self.events[i], &mut self.long_counts[i]),
            (&mut self.short_events[i], &mut self.short_counts[i]),
        ] {
            dq.push_back((now_us, good));
            counts.0 += 1;
            if !good {
                counts.1 += 1;
            }
        }
        let lfrom = now_us.saturating_sub(self.cfg.long_window_us);
        Self::prune(&mut self.events[i], &mut self.long_counts[i], lfrom);
        let sfrom = now_us.saturating_sub(self.cfg.short_window_us);
        Self::prune(&mut self.short_events[i], &mut self.short_counts[i], sfrom);
        let long = self.burn_of(i, self.long_counts[i]);
        let short = self.burn_of(i, self.short_counts[i]);
        let enough = self.long_counts[i].0 >= self.cfg.min_events;
        if !self.active[i]
            && enough
            && long >= self.cfg.burn_threshold
            && short >= self.cfg.burn_threshold
        {
            self.active[i] = true;
            self.fired += 1;
            self.alerts.push(format!(
                "{now_us} alert {} burn_long {long:.2} burn_short {short:.2}",
                t.name()
            ));
            return true;
        }
        if self.active[i] && long < self.cfg.burn_threshold {
            self.active[i] = false;
            self.alerts
                .push(format!("{now_us} resolve {} burn_long {long:.2}", t.name()));
        }
        false
    }

    /// True while an alert is active for the tier.
    pub fn is_alerting(&self, t: Tier) -> bool {
        self.active[t.index()]
    }

    /// Alerts fired so far (resolve lines not counted).
    pub fn alerts_fired(&self) -> u64 {
        self.fired
    }

    /// The deterministic alert log: `"{t} alert {tier} ..."` /
    /// `"{t} resolve {tier} ..."` lines in time order.
    pub fn alert_lines(&self) -> &[String] {
        &self.alerts
    }

    /// The alert log as canonical bytes (empty log ⇒ empty bytes) —
    /// part of the determinism surface alongside the event log.
    pub fn alert_bytes(&self) -> Vec<u8> {
        if self.alerts.is_empty() {
            return Vec::new();
        }
        let mut out = self.alerts.join("\n").into_bytes();
        out.push(b'\n');
        out
    }

    /// Cumulative error-budget ledger for a tier.
    pub fn budget(&self, t: Tier) -> SloBudget {
        let i = t.index();
        let total = self.good[i] + self.bad[i];
        SloBudget {
            total,
            bad: self.bad[i],
            allowed: (1.0 - self.cfg.tiers[i].target).max(0.0) * total as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> SloConfig {
        SloConfig {
            enabled: true,
            tiers: [
                TierSlo {
                    latency_us: 50_000,
                    target: 0.999,
                },
                TierSlo {
                    latency_us: 200_000,
                    target: 0.95,
                },
                TierSlo {
                    latency_us: 400_000,
                    target: 0.80,
                },
            ],
            short_window_us: 100_000,
            long_window_us: 800_000,
            burn_threshold: 2.0,
            min_events: 10,
        }
    }

    #[test]
    fn all_good_never_alerts() {
        let mut e = SloEngine::new(test_cfg());
        for k in 0..500u64 {
            assert!(!e.on_event(k * 1_000, Tier::Prod, true));
        }
        assert!(e.alert_lines().is_empty());
        assert_eq!(e.alerts_fired(), 0);
        let b = e.budget(Tier::Prod);
        assert_eq!((b.total, b.bad), (500, 0));
        assert!((b.remaining_frac() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_badness_fires_once_then_resolves() {
        let mut e = SloEngine::new(test_cfg());
        let mut fired = 0;
        // A solid run of failures: burn = (1.0)/(0.05) = 20 ≫ 2.
        for k in 0..50u64 {
            if e.on_event(k * 1_000, Tier::Batch, false) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "hysteresis: one fire per incident");
        assert!(e.is_alerting(Tier::Batch));
        // Recovery: long window drains of bad events.
        for k in 0..2_000u64 {
            e.on_event(50_000 + k * 1_000, Tier::Batch, true);
        }
        assert!(!e.is_alerting(Tier::Batch));
        let lines = e.alert_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("alert batch"));
        assert!(lines[1].contains("resolve batch"));
    }

    #[test]
    fn single_blip_does_not_fire() {
        let mut e = SloEngine::new(test_cfg());
        // One bad event among few: min_events keeps the alarm quiet.
        assert!(!e.on_event(1_000, Tier::BestEffort, false));
        for k in 0..5u64 {
            assert!(!e.on_event(2_000 + k, Tier::BestEffort, true));
        }
        assert!(e.alert_lines().is_empty());
    }

    #[test]
    fn old_badness_outside_short_window_does_not_fire() {
        let mut e = SloEngine::new(test_cfg());
        // Burst of bad events early, then only good ones well past the
        // short window: the long window still burns but "is it still
        // happening" says no. Use batch (5% budget): 8 bad of 20 in the
        // long window burns 8 ≫ 2, but the short window is clean.
        for k in 0..8u64 {
            e.on_event(k * 1_000, Tier::Batch, false);
        }
        for k in 0..12u64 {
            let fired = e.on_event(300_000 + k * 1_000, Tier::Batch, true);
            assert!(!fired, "event {k} fired despite clean short window");
        }
        assert!(e.alert_lines().is_empty());
    }

    #[test]
    fn disabled_engine_is_inert() {
        let mut e = SloEngine::new(SloConfig::off());
        for k in 0..100u64 {
            assert!(!e.on_event(k, Tier::Prod, false));
        }
        assert!(e.alert_lines().is_empty());
        assert!(e.alert_bytes().is_empty());
    }

    #[test]
    fn budget_ledger_tracks_allowance() {
        let mut e = SloEngine::new(test_cfg());
        for k in 0..100u64 {
            // 10% bad against best-effort's 20% budget: half spent.
            e.on_event(k * 1_000, Tier::BestEffort, k % 10 != 0);
        }
        let b = e.budget(Tier::BestEffort);
        assert_eq!((b.total, b.bad), (100, 10));
        assert!((b.allowed - 20.0).abs() < 1e-6);
        assert!((b.remaining_frac() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn for_admission_derives_sane_windows() {
        let cfg = SloConfig::for_admission(&AdmissionConfig::small());
        assert!(cfg.enabled);
        assert_eq!(cfg.tiers[0].latency_us, 50_000);
        assert_eq!(cfg.long_window_us, 3_200_000);
        assert_eq!(cfg.short_window_us, 400_000);
        assert!(cfg.tiers[0].target > cfg.tiers[2].target);
    }
}
