//! borg-serve: an overload-hardened query service over immutable trace
//! epochs.
//!
//! The analysis pipeline so far runs queries as a batch program: load a
//! trace, run the plan, exit. A *service* answering those queries
//! continuously faces a different adversary — overload. This crate
//! reproduces the production playbook the Borg papers assume around
//! their monitoring stacks, in miniature and fully replayable:
//!
//! * **Tiered admission** ([`tier`], [`service`]): prod / batch /
//!   best-effort classes with dedicated worker quotas, bounded
//!   per-tier and global queues, and displacement — under pressure the
//!   lowest tier is shed first, by construction.
//! * **Deadline propagation** ([`service`]): each tier has a latency
//!   budget; queued requests expire, running requests are cancelled
//!   cooperatively via a token the engine observes at 64 Ki-row block
//!   boundaries (`borg_query`'s cancellation points).
//! * **Seeded retries and circuit breaking** ([`retry`], [`breaker`]):
//!   panicked attempts retry with exponential backoff and *seeded*
//!   jitter (replayable storms), and an epoch whose queries fail
//!   consecutively trips a breaker that sheds non-prod traffic until a
//!   half-open probe succeeds.
//! * **Chaos, proven** ([`chaos`], [`sim`], [`smoke`]): a seeded fault
//!   injector (worker stalls, panicking queries, slow epoch loads)
//!   plugged into two drivers — a virtual-time sim whose event log is
//!   byte-identical across runs, and a wall-clock smoke harness with a
//!   real thread pool ([`pool`]) proving the same state machine
//!   survives real threads.
//!
//! The seam between decision and mechanism is [`service::Service`]: a
//! sans-io state machine that owns every admission/retry/expiry
//! decision and none of the execution. That split is what makes the
//! robustness claims testable — determinism contracts pin the decision
//! log, chaos tests pound the mechanisms.
//!
//! * **Observability, deterministic** ([`witness`], [`slo`],
//!   [`recorder`]): every submission mints a causal trace id and
//!   builds a per-query span tree (queue / attempt / execute /
//!   block-scan / cancel), an SLO engine evaluates per-tier
//!   multi-window burn rates over the same time values, and a flight
//!   recorder snapshots recent events on anomalies — all byte-
//!   replayable under the same seed (DESIGN.md §17).
//!
//! Results are rendered through a plan-and-epoch-keyed single-flight
//! cache ([`borg_query::cache`]), so identical plans against the same
//! epoch dedupe instead of dog-piling the workers.

#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod epoch;
pub mod plan;
pub mod pool;
pub mod recorder;
pub mod retry;
pub mod service;
pub mod sim;
pub mod slo;
pub mod smoke;
pub mod tier;
pub mod witness;

pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos::{ChaosConfig, Fault};
pub use epoch::{Epoch, EpochStore, TableId};
pub use plan::{AggSpec, CmpOp, FilterSpec, GroupSpec, PlanSpec};
pub use pool::{run_serve_job, JobResult, ServeJob, ServePool};
pub use recorder::{FlightRecorder, RecorderConfig, RecorderSnapshot, TriggerKind};
pub use retry::RetryPolicy;
pub use service::{
    Action, Attempt, AttemptResult, Outcome, QueryRequest, ServeConfig, Service, ServiceStats,
    ShedReason,
};
pub use sim::{
    generate_arrivals, open_loop_gap_us, overload_admission, plan_catalog, ExecMode, ModelCost,
    ServeSim, SimReport, WorkloadSpec,
};
pub use slo::{SloBudget, SloConfig, SloEngine, TierSlo};
pub use smoke::{run_smoke, SmokeReport};
pub use tier::{AdmissionConfig, Tier, TierPolicy};
pub use witness::{mint_trace_id, QueryTrace, SegKind, Segment, Witness, WitnessConfig};
