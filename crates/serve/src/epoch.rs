//! Immutable trace epochs: the data the service queries.
//!
//! A long-running service reloads its trace periodically; each load is
//! an **epoch** — the four relational trace tables frozen behind an
//! `Arc`, tagged with a monotonically increasing sequence number.
//! Sessions always see a consistent epoch (queries never straddle a
//! reload), and the sequence number keys the result cache so stale
//! results can never be served for a reloaded epoch of the same name.

use borg_core::pipeline::{load_trace_dir_with, DataQuality};
use borg_query::{QueryError, Table};
use borg_telemetry::Telemetry;
use borg_trace::trace::Trace;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One of the four published trace tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableId {
    /// Collection lifecycle events.
    CollectionEvents,
    /// Instance lifecycle events.
    InstanceEvents,
    /// Machine add/remove/update events.
    MachineEvents,
    /// 5-minute instance usage windows.
    Usage,
}

impl TableId {
    /// All four tables, in published order.
    pub const ALL: [TableId; 4] = [
        TableId::CollectionEvents,
        TableId::InstanceEvents,
        TableId::MachineEvents,
        TableId::Usage,
    ];

    /// Index into per-table arrays.
    fn index(self) -> usize {
        match self {
            TableId::CollectionEvents => 0,
            TableId::InstanceEvents => 1,
            TableId::MachineEvents => 2,
            TableId::Usage => 3,
        }
    }
}

/// An immutable snapshot of one trace, ready to query.
#[derive(Debug)]
pub struct Epoch {
    /// Caller-chosen name (e.g. cell name or directory stem).
    pub name: String,
    /// Monotonic load sequence number, unique within an [`EpochStore`].
    pub seq: u64,
    tables: [Table; 4],
}

impl Epoch {
    /// Builds an epoch from an in-memory trace.
    pub fn from_trace(name: &str, seq: u64, trace: &Trace) -> Result<Epoch, QueryError> {
        Ok(Epoch {
            name: name.to_string(),
            seq,
            tables: [
                borg_core::tables::collection_events_table(trace)?,
                borg_core::tables::instance_events_table(trace)?,
                borg_core::tables::machine_events_table(trace)?,
                borg_core::tables::usage_table(trace)?,
            ],
        })
    }

    /// The requested table.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Row count of the requested table (drives the virtual cost
    /// model).
    pub fn rows(&self, id: TableId) -> usize {
        self.table(id).num_rows()
    }
}

/// Named epochs behind `Arc`s, with monotonic sequence numbering.
#[derive(Debug, Default)]
pub struct EpochStore {
    epochs: BTreeMap<String, Arc<Epoch>>,
    next_seq: u64,
}

impl EpochStore {
    /// An empty store.
    pub fn new() -> EpochStore {
        EpochStore::default()
    }

    /// Freezes `trace` as the current epoch for `name` (replacing any
    /// previous epoch of that name; in-flight queries keep their `Arc`).
    pub fn insert_trace(&mut self, name: &str, trace: &Trace) -> Result<Arc<Epoch>, QueryError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let epoch = Arc::new(Epoch::from_trace(name, seq, trace)?);
        self.epochs.insert(name.to_string(), Arc::clone(&epoch));
        Ok(epoch)
    }

    /// Loads a trace directory through the repairing ingestion pipeline
    /// and freezes it as an epoch. The load's [`DataQuality`] tallies
    /// are exported on the telemetry engine plane
    /// (`trace.quarantine.*`, `trace.repair.*`), so a service that
    /// swallowed a damaged epoch is visible on its dashboard.
    pub fn load_dir(
        &mut self,
        name: &str,
        dir: &std::path::Path,
        tel: &mut Telemetry,
    ) -> Result<(Arc<Epoch>, DataQuality), QueryError> {
        let (trace, quality) = load_trace_dir_with(dir, tel);
        quality.export_engine_metrics(tel);
        let epoch = self.insert_trace(name, &trace)?;
        Ok((epoch, quality))
    }

    /// The current epoch for `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<Epoch>> {
        self.epochs.get(name).cloned()
    }

    /// Epoch names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.epochs.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn epochs_get_fresh_sequence_numbers() {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        let mut store = EpochStore::new();
        let e1 = store.insert_trace("a", &outcome.trace).unwrap();
        let e2 = store.insert_trace("a", &outcome.trace).unwrap();
        assert_eq!(e1.seq, 0);
        assert_eq!(e2.seq, 1, "reload bumps the sequence");
        assert_eq!(store.get("a").unwrap().seq, 1);
        assert!(store.get("b").is_none());
        for id in TableId::ALL {
            assert_eq!(e1.rows(id), e2.rows(id));
        }
        assert!(e1.rows(TableId::InstanceEvents) > 0);
    }

    #[test]
    fn load_dir_exports_engine_metrics() {
        let outcome = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 2);
        let dir = std::env::temp_dir().join(format!("borg_serve_epoch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        borg_trace::csv::write_trace_dir(&outcome.trace, &dir).unwrap();
        let mut store = EpochStore::new();
        let mut tel = Telemetry::enabled();
        let (epoch, quality) = store.load_dir("b", &dir, &mut tel).unwrap();
        assert!(quality.is_pristine());
        assert!(epoch.rows(TableId::Usage) > 0);
        let snap = tel.snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|c| c.name == "trace.rows_ingested"),
            "engine-plane ingest metrics exported"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
