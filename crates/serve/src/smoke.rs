//! Real-time smoke harness: the same [`Service`] state machine, driven
//! by the blessed wall clock and a real [`ServePool`].
//!
//! The virtual-time sim proves the *decisions* are right and
//! replayable; this harness proves the state machine also survives
//! contact with real threads — real stalls occupying real workers, real
//! panics crossing `catch_unwind`, real cancellation tokens observed by
//! the real engine. It is deliberately non-deterministic (wall-clock
//! timing), so its contract is coarse: every query reaches a terminal
//! outcome (clean drain), prod never misses its (generous) deadline,
//! and the run finishes fast. `scripts/check.sh --serve` pins exactly
//! that.
//!
//! Times read here come from [`borg_telemetry::clock::now_ns`] — the
//! workspace's single blessed wall-clock routing point — and feed only
//! scheduling and the timing-flavored report fields, never a
//! deterministic artifact.

use crate::chaos::ChaosConfig;
use crate::epoch::Epoch;
use crate::pool::{run_serve_job, JobResult, ServeJob, ServePool};
use crate::recorder::RecorderConfig;
use crate::retry::RetryPolicy;
use crate::service::{Action, AttemptResult, Outcome, ServeConfig, Service, ServiceStats};
use crate::sim::{generate_arrivals, WorkloadSpec};
use crate::slo::SloConfig;
use crate::tier::{AdmissionConfig, Tier, TierPolicy};
use crate::witness::WitnessConfig;
use borg_telemetry::clock::now_ns;
use std::sync::Arc;

/// What one smoke run produced.
#[derive(Debug)]
pub struct SmokeReport {
    /// Per-tier tallies.
    pub stats: ServiceStats,
    /// Terminal outcome per query id, decision order.
    pub outcomes: Vec<(u64, Outcome)>,
    /// Queries that returned real result bytes.
    pub results_returned: usize,
    /// Every submitted query reached a terminal outcome and both the
    /// service and the pool drained before the time limit.
    pub drained: bool,
    /// Wall-clock duration of the run, µs (timing plane — do not pin).
    pub elapsed_us: u64,
    /// Times any epoch breaker tripped open.
    pub breaker_trips: u64,
    /// SLO alerts fired during the run (timing-flavored — do not pin).
    pub slo_alerts: u64,
    /// Flight-recorder snapshots captured (timing-flavored — do not pin).
    pub recorder_snapshots: usize,
    /// Witness span trees built — one per submitted query.
    pub traces: usize,
}

impl SmokeReport {
    /// Prod-tier queries that missed their deadline (expired). The
    /// smoke contract requires this to be zero: prod deadlines are set
    /// generous relative to the injected stalls.
    pub fn prod_deadline_misses(&self) -> u64 {
        self.stats.expired[Tier::Prod.index()]
    }
}

/// Admission profile for the smoke run: wall-clock stalls are in the
/// 1–10 ms range, so a 1.5 s prod deadline makes "zero prod misses"
/// robust on a loaded CI machine while batch/best-effort still see
/// real queueing.
fn smoke_admission() -> AdmissionConfig {
    AdmissionConfig {
        tiers: [
            TierPolicy {
                workers: 2,
                queue_cap: 64,
                deadline_us: 1_500_000,
                max_attempts: 3,
            },
            TierPolicy {
                workers: 2,
                queue_cap: 48,
                deadline_us: 3_000_000,
                max_attempts: 2,
            },
            TierPolicy {
                workers: 2,
                queue_cap: 32,
                deadline_us: 5_000_000,
                max_attempts: 1,
            },
        ],
        global_queue_cap: 96,
    }
}

/// Chaos profile for the smoke run: frequent short stalls, occasional
/// real panics, a small slow-epoch delay.
fn smoke_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        enabled: true,
        seed,
        stall_prob: 0.30,
        stall_us: (1_000, 10_000),
        panic_prob: 0.05,
        slow_epoch_us: 2_000,
    }
}

/// Wall-clock budget for one smoke run. `check.sh --serve` requires
/// completion well under 10 s; a run that exceeds this is reported as
/// not drained rather than hanging the harness.
const SMOKE_BUDGET_US: u64 = 10_000_000;

/// Runs 200 mixed-tier queries with injected stalls and panics against
/// a real thread pool, on the wall clock. See the module docs for the
/// contract.
pub fn run_smoke(epoch: Arc<Epoch>, seed: u64) -> SmokeReport {
    let admission = smoke_admission();
    let cfg = ServeConfig {
        admission,
        retry: RetryPolicy::default_with_seed(seed),
        breaker_threshold: 5,
        breaker_cooloff_us: 50_000,
        chaos: smoke_chaos(seed),
        // The same SLO engine runs on the blessed clock here: alert
        // content is timing-flavored (do not pin), but the machinery
        // is exercised against real threads.
        slo: SloConfig::for_admission(&admission),
        witness: WitnessConfig::on(),
        recorder: RecorderConfig::standard(),
    };
    let spec = WorkloadSpec {
        seed,
        queries: 200,
        mean_gap_us: 2_000.0,
        tier_mix: [0.2, 0.4, 0.4],
        epochs: vec![epoch.name.clone()],
    };
    let arrivals = generate_arrivals(&spec);
    let total_workers: usize = cfg.admission.tiers.iter().map(|t| t.workers).sum();
    let mut pool = ServePool::new(total_workers, run_serve_job as fn(ServeJob) -> JobResult);
    let mut service = Service::new(cfg);
    let mut results_returned = 0usize;
    let mut drained = false;

    let t0 = now_ns();
    let now_us = |t0: u64| now_ns().saturating_sub(t0) / 1_000;
    service.register_epoch(now_us(t0), Arc::clone(&epoch));
    let mut ai = 0usize;
    loop {
        let now = now_us(t0);
        service.on_tick(now);
        while arrivals.get(ai).is_some_and(|(at, _)| *at <= now) {
            let (_, req) = &arrivals[ai];
            service.submit(now, req.clone());
            ai += 1;
        }
        while let Some(Action::Start(att)) = service.next_action() {
            // Per-tier quotas sum to the pool size, so an idle worker
            // always exists for a dispatched attempt.
            let ok = pool.submit(
                att.id,
                ServeJob {
                    plan: att.plan,
                    epoch: att.epoch,
                    cancel: att.cancel,
                    fault: att.fault,
                },
            );
            debug_assert!(ok, "admission quotas exceeded the pool");
        }
        while let Some((id, result)) = pool.poll() {
            let r = match result {
                JobResult::Done(_) => {
                    results_returned += 1;
                    AttemptResult::Ok
                }
                JobResult::Cancelled => AttemptResult::Cancelled,
                JobResult::Panicked => AttemptResult::Panicked,
            };
            service.on_attempt_done(now_us(t0), id, r);
        }
        if ai == arrivals.len() && service.is_idle() && pool.in_flight() == 0 {
            drained = true;
            break;
        }
        if now > SMOKE_BUDGET_US {
            break; // Report as not drained instead of hanging.
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    SmokeReport {
        stats: service.stats().clone(),
        outcomes: service.outcomes().to_vec(),
        results_returned,
        drained,
        elapsed_us: now_us(t0),
        breaker_trips: service.breaker_trips(),
        slo_alerts: service.slo().alerts_fired(),
        recorder_snapshots: service.recorder().snapshots().len(),
        traces: service.witness().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_core::pipeline::{simulate_cell, SimScale};
    use borg_workload::cells::CellProfile;

    #[test]
    fn smoke_drains_cleanly_with_zero_prod_misses() {
        let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
        let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).unwrap());
        let report = run_smoke(epoch, 42);
        assert!(report.drained, "run did not drain: {:?}", report.stats);
        assert_eq!(
            report.prod_deadline_misses(),
            0,
            "prod missed deadlines: {:?}",
            report.stats
        );
        assert_eq!(report.stats.sheds(Tier::Prod), 0, "prod was shed");
        // Every query reached a terminal outcome exactly once.
        assert_eq!(report.outcomes.len(), 200);
        let done: u64 = report.stats.done.iter().sum();
        assert_eq!(done as usize, report.results_returned);
        assert!(report.elapsed_us < SMOKE_BUDGET_US);
        // Every submission minted a span tree, even sheds.
        assert_eq!(report.traces, 200);
    }
}
