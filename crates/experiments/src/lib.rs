#![warn(missing_docs)]

//! Shared scaffolding for the experiment binaries.
//!
//! Every binary accepts `--scale tiny|small|month` (default `small`) and
//! `--seed N` (default 2019), prints which experiment it reproduces, and
//! emits the same rows/series the paper reports. `all` runs the complete
//! battery — its month-scale output is what EXPERIMENTS.md records.

use borg_core::pipeline::SimScale;
use borg_sim::CellOutcome;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Simulation scale.
    pub scale: SimScale,
    /// Base RNG seed.
    pub seed: u64,
    /// Directory for machine-readable series dumps (`--dump DIR`).
    pub dump: Option<std::path::PathBuf>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            scale: SimScale::Small,
            seed: 2019,
            dump: None,
        }
    }
}

/// Parses `--scale` and `--seed` from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on unknown arguments.
pub fn parse_opts() -> ExpOpts {
    let mut opts = ExpOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("month") => SimScale::Month,
                    other => panic!("unknown scale {other:?}; use tiny|small|month"),
                };
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
            }
            "--dump" => {
                i += 1;
                let dir = args
                    .get(i)
                    .unwrap_or_else(|| panic!("--dump needs a directory"));
                opts.dump = Some(std::path::PathBuf::from(dir));
            }
            other => {
                panic!(
                    "unknown argument {other:?}; usage: [--scale tiny|small|month] [--seed N] [--dump DIR]"
                )
            }
        }
        i += 1;
    }
    opts
}

/// Prints a standard experiment banner.
pub fn banner(id: &str, what: &str, opts: &ExpOpts) {
    let cfg = opts.scale.config(opts.seed);
    println!("=== {id}: {what} ===");
    println!(
        "scale: {:?} ({}% of a cell, {:.0} days, seed {})",
        opts.scale,
        cfg.scale * 100.0,
        cfg.horizon.as_days_f64(),
        opts.seed
    );
    println!();
}

/// Prints a CCDF compactly: sample count, median, and tail quantiles.
pub fn print_ccdf_summary(name: &str, ccdf: &borg_analysis::ccdf::Ccdf) {
    if ccdf.is_empty() {
        println!("{name}: (no samples)");
        return;
    }
    let q = |p: f64| ccdf.quantile_exceeding(p).unwrap_or(f64::NAN);
    println!(
        "{name}: n={}  median={:.4}  p90={:.4}  p99={:.4}  max={:.4}",
        ccdf.len(),
        ccdf.median().unwrap_or(f64::NAN),
        q(0.10),
        q(0.01),
        ccdf.samples().last().copied().unwrap_or(f64::NAN),
    );
}

/// Writes an `(x, y)` series as a two-column CSV into the dump directory,
/// when one was requested. Errors are reported, not fatal.
pub fn dump_series(opts: &ExpOpts, name: &str, series: &[(f64, f64)]) {
    let Some(dir) = &opts.dump else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("dump: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from("x,y\n");
    for (x, y) in series {
        out.push_str(&format!("{x},{y}\n"));
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("dump: cannot write {}: {e}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

/// Labels for the 2019 outcomes ("a" … "h").
pub fn labelled(outcomes: &[CellOutcome]) -> Vec<(&str, &CellOutcome)> {
    outcomes
        .iter()
        .map(|o| (o.metrics.cell_name.as_str(), o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = ExpOpts::default();
        assert_eq!(o.seed, 2019);
        assert_eq!(o.scale, SimScale::Small);
    }
}
