//! Table 2: distribution of per-job usage integrals (statistical mode).

use borg_core::analyses::consumption;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner(
        "Table 2",
        "per-job NCU-hour / NMU-hour distribution statistics",
        &opts,
    );
    let cols = consumption::table2(2_000_000, opts.seed).expect("table 2 computes");
    println!("{}", consumption::render_table2(&cols));
    // Load-concentration summary (extension): Gini coefficients.
    use borg_workload::integral::IntegralModel;
    let (cpu19, _) = consumption::era_samples(&IntegralModel::model_2019(), 500_000, opts.seed);
    let (cpu11, _) = consumption::era_samples(&IntegralModel::model_2011(), 500_000, opts.seed ^ 3);
    println!(
        "Gini coefficient of per-job CPU consumption: 2011 {:.4}, 2019 {:.4}",
        borg_analysis::lorenz::gini(&cpu11).unwrap_or(f64::NAN),
        borg_analysis::lorenz::gini(&cpu19).unwrap_or(f64::NAN),
    );
    println!("paper: C^2 = 8375/11001 (2011), 23312/43476 (2019); alpha = 0.77/0.72, 0.69/0.72; top-1% load > 97%");
}
