//! Overload sweep: open-loop arrivals at 2× saturation, with chaos,
//! across three seeds — the graceful-degradation proof for borg-serve.
//!
//! For each seed the virtual-time driver (`ServeSim`, model mode) runs
//! the same workload twice and asserts the event logs are
//! byte-identical (replayable shed/retry/breaker sequences), then
//! checks the degradation ordering the admission design promises:
//!
//! * prod p99 latency within the prod deadline, zero prod sheds;
//! * best-effort absorbs the overload (sheds > 0);
//! * every submitted query reaches exactly one terminal outcome.
//!
//! The per-tier table below is what EXPERIMENTS.md records; the
//! `serve_overload` entry in BENCH_simulator.json carries the summary.

use borg_core::pipeline::simulate_cell;
use borg_experiments::{banner, parse_opts};
use borg_serve::{
    generate_arrivals, open_loop_gap_us, overload_admission, ChaosConfig, Epoch, ModelCost,
    Outcome, RecorderConfig, RetryPolicy, ServeConfig, ServeSim, SloConfig, Tier, WitnessConfig,
    WorkloadSpec,
};
use borg_workload::cells::CellProfile;
use std::sync::Arc;

/// Load factor relative to total worker capacity (2.0 = twice what the
/// service can possibly serve).
const LOAD_FACTOR: f64 = 2.0;
const QUERIES: usize = 3_000;

fn main() {
    let opts = parse_opts();
    banner(
        "Serve overload",
        "tiered admission under 2x saturating load",
        &opts,
    );

    let outcome = simulate_cell(&CellProfile::cell_2019('a'), opts.scale, opts.seed);
    let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"));

    let admission = overload_admission();
    let cost = ModelCost::default();
    let prod_deadline_us = admission.tiers[0].deadline_us;
    for seed in [opts.seed, opts.seed + 1, opts.seed + 2] {
        let chaos = ChaosConfig::moderate(seed);
        let gap = open_loop_gap_us(&admission, &cost, &chaos, 1.0, LOAD_FACTOR);
        let cfg = ServeConfig {
            admission,
            retry: RetryPolicy::default_with_seed(seed),
            breaker_threshold: 5,
            breaker_cooloff_us: 50_000,
            chaos,
            slo: SloConfig::for_admission(&admission),
            witness: WitnessConfig::on(),
            recorder: RecorderConfig::standard(),
        };
        let spec = WorkloadSpec {
            seed,
            queries: QUERIES,
            mean_gap_us: gap,
            tier_mix: [0.10, 0.40, 0.50],
            epochs: vec!["a".into()],
        };
        let arrivals = generate_arrivals(&spec);
        let sim = ServeSim::default();
        let r1 = sim.run(cfg.clone(), std::slice::from_ref(&epoch), &arrivals);
        let r2 = sim.run(cfg, std::slice::from_ref(&epoch), &arrivals);
        assert_eq!(r1.log, r2.log, "seed {seed}: event log not byte-replayable");
        assert_eq!(
            r1.trace_export(),
            r2.trace_export(),
            "seed {seed}: span-tree export not byte-replayable"
        );
        assert_eq!(
            r1.alerts, r2.alerts,
            "seed {seed}: alert log not replayable"
        );
        assert_eq!(
            r1.recorder_dump, r2.recorder_dump,
            "seed {seed}: flight-recorder dump not replayable"
        );

        println!(
            "seed {seed}: gap {:.0}us, horizon {:.1}s, digest {:016x}",
            gap,
            r1.horizon_us as f64 / 1e6,
            r1.digest()
        );
        println!(
            "  {:>11} {:>9} {:>6} {:>7} {:>5} {:>6} {:>7} {:>9} {:>9}",
            "tier", "submitted", "done", "expired", "shed", "failed", "retries", "p50_ms", "p99_ms"
        );
        for t in Tier::ALL {
            let i = t.index();
            println!(
                "  {:>11} {:>9} {:>6} {:>7} {:>5} {:>6} {:>7} {:>9.1} {:>9.1}",
                t.name(),
                r1.stats.submitted[i],
                r1.stats.done[i],
                r1.stats.expired[i],
                r1.stats.sheds(t),
                r1.stats.failed[i],
                r1.stats.retries[i],
                r1.stats.latency_quantile_us(t, 0.50) as f64 / 1_000.0,
                r1.stats.latency_quantile_us(t, 0.99) as f64 / 1_000.0,
            );
        }

        // Graceful-degradation contract.
        let prod_p99 = r1.stats.latency_quantile_us(Tier::Prod, 0.99);
        assert!(
            prod_p99 <= prod_deadline_us,
            "seed {seed}: prod p99 {prod_p99}us exceeds deadline {prod_deadline_us}us"
        );
        assert_eq!(
            r1.stats.sheds(Tier::Prod),
            0,
            "seed {seed}: prod traffic was shed under overload"
        );
        assert!(
            r1.stats.sheds(Tier::BestEffort) > 0,
            "seed {seed}: best-effort absorbed none of the overload"
        );
        assert_eq!(
            r1.outcomes.len(),
            QUERIES,
            "seed {seed}: a terminal outcome per query"
        );
        let dup_check: std::collections::BTreeSet<u64> =
            r1.outcomes.iter().map(|(id, _)| *id).collect();
        assert_eq!(dup_check.len(), QUERIES, "seed {seed}: duplicate outcomes");
        let done = r1.ids_where(|o| matches!(o, Outcome::Done { .. }));
        assert!(
            !done.is_empty(),
            "seed {seed}: nothing completed under overload"
        );
        println!(
            "  observability: {} traces, {} alerts, {} recorder snapshot(s)",
            r1.witness.len(),
            r1.alerts.len(),
            r1.recorder_dump
                .split(|b| *b == b'\n')
                .filter(|l| l.starts_with(b"-- snapshot"))
                .count(),
        );
    }

    // Witness overhead A/B on the base seed: the observability layer
    // must ride within noise of the bare state machine (the delta lands
    // in BENCH_simulator.json).
    {
        let chaos = ChaosConfig::moderate(opts.seed);
        let gap = open_loop_gap_us(&admission, &cost, &chaos, 1.0, LOAD_FACTOR);
        let spec = WorkloadSpec {
            seed: opts.seed,
            queries: QUERIES,
            mean_gap_us: gap,
            tier_mix: [0.10, 0.40, 0.50],
            epochs: vec!["a".into()],
        };
        let arrivals = generate_arrivals(&spec);
        let mk = |on: bool| ServeConfig {
            admission,
            retry: RetryPolicy::default_with_seed(opts.seed),
            breaker_threshold: 5,
            breaker_cooloff_us: 50_000,
            chaos,
            slo: if on {
                SloConfig::for_admission(&admission)
            } else {
                SloConfig::off()
            },
            witness: if on {
                WitnessConfig::on()
            } else {
                WitnessConfig::off()
            },
            recorder: if on {
                RecorderConfig::standard()
            } else {
                RecorderConfig::off()
            },
        };
        let sim = ServeSim::default();
        // lint: nondeterministic-source-ok (wall-clock measures harness overhead only; never enters a log)
        let t = std::time::Instant::now();
        let bare = sim.run(mk(false), std::slice::from_ref(&epoch), &arrivals);
        let off_ms = t.elapsed().as_secs_f64() * 1e3;
        // lint: nondeterministic-source-ok (wall-clock measures harness overhead only; never enters a log)
        let t = std::time::Instant::now();
        let full = sim.run(mk(true), std::slice::from_ref(&epoch), &arrivals);
        let on_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            bare.log, full.log,
            "witness must not perturb the decision log"
        );
        println!(
            "witness overhead: off {off_ms:.1}ms on {on_ms:.1}ms ({:+.1}%)",
            (on_ms / off_ms - 1.0) * 100.0
        );
    }
    println!("serve overload: OK (3 seeds, replayable, prod protected)");
}
