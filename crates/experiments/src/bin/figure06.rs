//! Figure 6: CCDF of machine CPU/memory utilization at one snapshot.

use borg_core::analyses::machine_util;
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 6",
        "machine utilization CCDFs at the day-15 snapshot",
        &opts,
    );
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    println!("--- CPU utilization ---");
    for o in &y2019 {
        print_ccdf_summary(
            &format!("cell {}", o.metrics.cell_name),
            &machine_util::cpu_ccdf(o),
        );
    }
    print_ccdf_summary("2011", &machine_util::cpu_ccdf(&y2011));
    println!("\n--- memory utilization ---");
    for o in &y2019 {
        print_ccdf_summary(
            &format!("cell {}", o.metrics.cell_name),
            &machine_util::mem_ccdf(o),
        );
    }
    print_ccdf_summary("2011", &machine_util::mem_ccdf(&y2011));
    let above_2019: f64 = y2019
        .iter()
        .map(|o| machine_util::fraction_above_cpu(o, 0.8))
        .sum::<f64>()
        / y2019.len() as f64;
    println!(
        "\nmachines above 80% CPU: 2019 avg {:.3} vs 2011 {:.3} (paper: fewer in 2019)",
        above_2019,
        machine_util::fraction_above_cpu(&y2011, 0.8)
    );
}
