//! Summarize a trace directory: the "canonical toolkit" workflow.
//!
//! Reads a trace previously exported with
//! `borg_trace::csv::write_trace_dir` (or produced externally in the same
//! layout) through the repairing ingestion pipeline — malformed lines
//! are quarantined and lifecycle gaps repaired, not fatal — validates
//! the result against the §9 invariants, and prints a Table-1-style
//! summary plus headline workload statistics, annotated with the data
//! quality of the load. No simulation involved.
//!
//! ```sh
//! cargo run --release -p borg-experiments --bin summarize -- <trace-dir>
//! # or, without arguments, generate a demo trace first:
//! cargo run --release -p borg-experiments --bin summarize
//! ```

use borg_analysis::ccdf::Ccdf;
use borg_core::pipeline::{load_trace_dir, DataQuality};
use borg_trace::collection::CollectionType;
use borg_trace::csv::write_trace_dir;
use borg_trace::machine::shape_census;
use borg_trace::state::EventType;
use borg_trace::trace::Trace;
use borg_trace::validate::validate;

fn main() {
    // Demo mode keeps the simulator's end-of-run metrics so the sim run
    // and the ingested trace print comparable summaries side by side.
    let (dir, sim_metrics) = match std::env::args().nth(1) {
        Some(d) => (std::path::PathBuf::from(d), None),
        None => {
            // Demo mode: export a simulated trace, then summarize it.
            let dir = std::env::temp_dir().join("borg2019_demo_trace");
            println!(
                "no trace directory given; generating a demo trace at {}\n",
                dir.display()
            );
            let outcome = borg_core::pipeline::simulate_cell(
                &borg_workload::cells::CellProfile::cell_2019('d'),
                borg_core::pipeline::SimScale::Tiny,
                1,
            );
            write_trace_dir(&outcome.trace, &dir).expect("demo trace written");
            (dir, Some(outcome.metrics))
        }
    };

    let (trace, quality) = load_trace_dir(&dir);
    if trace.machine_events.is_empty() && trace.instance_events.is_empty() {
        eprintln!(
            "no usable rows in trace at {}: {}",
            dir.display(),
            quality.quarantine.summary()
        );
        std::process::exit(1);
    }
    summarize(&trace, &quality);
    if let Some(metrics) = &sim_metrics {
        print_sim_metrics(metrics);
    }
}

/// The simulator-side account of the same cell: what the trace above
/// was distilled from (only available when this binary also ran the
/// simulation).
fn print_sim_metrics(m: &borg_sim::SimMetrics) {
    println!("\n=== sim-end metrics (simulator side of the same run) ===");
    print!("{}", m.explain_scheduling());
    println!(
        "  samples kept: {} scheduling delays, {} slack, {} machine snapshots",
        m.delays.len(),
        m.slack.len(),
        m.machine_snapshots.len()
    );
    println!(
        "  transitions: {} collection, {} instance",
        m.collection_transitions.total(),
        m.instance_transitions.total()
    );
}

fn summarize(trace: &Trace, quality: &DataQuality) {
    println!("=== trace summary: cell {} ===", trace.cell_name);
    println!(
        "schema: {}   window: {:.1} days",
        trace.schema.map_or("unknown", |s| s.name()),
        trace.horizon.as_days_f64()
    );
    println!("{}", quality.annotation());

    // Fleet.
    let census = shape_census(&trace.machine_events);
    let cap = trace.nominal_capacity();
    println!(
        "\nfleet: {} machines, {} shapes, capacity {:.1} NCU / {:.1} NMU",
        trace.machine_count(),
        census.shapes.len(),
        cap.cpu,
        cap.mem
    );
    if census.ignored() > 0 {
        println!(
            "  (shape census counted {} Add rows; skipped {} Remove, {} Update)",
            census.adds, census.ignored_removes, census.ignored_updates
        );
    }

    // Collections.
    let infos = trace.collections();
    let jobs = infos
        .values()
        .filter(|c| c.collection_type == CollectionType::Job)
        .count();
    let allocs = infos.len() - jobs;
    println!(
        "collections: {} ({jobs} jobs, {allocs} alloc sets)",
        infos.len()
    );
    let mut by_final: std::collections::BTreeMap<&str, usize> = Default::default();
    for info in infos.values() {
        let key = info.final_event.map_or("(alive at end)", |e| e.name());
        *by_final.entry(key).or_default() += 1;
    }
    println!("final states:");
    for (k, n) in by_final {
        println!("  {k:>15}: {n}");
    }

    // Events and churn.
    let submits = trace
        .instance_events
        .iter()
        .filter(|e| e.event_type == EventType::Submit)
        .count();
    let instances = trace.instance_count();
    println!(
        "\ninstances: {instances}, task submissions: {submits} (churn {:.2} resubmits/instance)",
        (submits as f64 - instances as f64) / instances.max(1) as f64
    );

    // Job sizes.
    let mut tasks_per_job: std::collections::BTreeMap<_, u32> = Default::default();
    for ev in &trace.instance_events {
        if ev.event_type == EventType::Submit {
            let e = tasks_per_job.entry(ev.instance_id.collection).or_insert(0);
            *e = (*e).max(ev.instance_id.index + 1);
        }
    }
    let sizes = Ccdf::from_samples(tasks_per_job.values().map(|&n| f64::from(n)));
    if let Some(m) = sizes.median() {
        println!(
            "tasks per job: median {m:.0}, p95 {:.0}, max {:.0}",
            sizes.quantile_exceeding(0.05).unwrap_or(f64::NAN),
            sizes.samples().last().copied().unwrap_or(f64::NAN)
        );
    }

    // Usage table.
    println!(
        "usage samples: {} (avg cpu {:.4} NCU per sampled task-window)",
        trace.usage.len(),
        trace.usage.iter().map(|u| u.avg_usage.cpu).sum::<f64>() / trace.usage.len().max(1) as f64
    );

    // §9 validation.
    let violations = validate(trace);
    if violations.is_empty() {
        println!("\nvalidation: all §9 invariants hold");
    } else {
        println!("\nvalidation: {} violations, first 5:", violations.len());
        for v in violations.iter().take(5) {
            println!("  {v}");
        }
    }
}
