//! `profile` — answers the ROADMAP's event-loop profiling question with
//! borg-telemetry: simulate a 512-machine cell-day with telemetry on and
//! print where the time goes.
//!
//! Sections:
//!  1. per-event-kind time/count breakdown of the simulator event loop,
//!  2. the phase-span tree (sample_fleet → gen_workload → … → finalize),
//!  3. scheduler-index counters (engine plane),
//!  4. the same snapshot round-tripped through the borg-query engine —
//!     the top spans and the deterministic-counter total are computed by
//!     `Query` over the bridge tables and cross-checked against the
//!     snapshot itself,
//!  5. chrome://tracing JSON export, validated in-process (written out
//!     with `--trace-out PATH`; load it at chrome://tracing),
//!  6. ingestion-pipeline stage timings: the simulated trace is written
//!     to a temp dir and re-read through the repairing loader with
//!     telemetry enabled,
//!  7. per-operator query-engine stats for a sample analysis query over
//!     the reloaded trace.
//!
//! ```sh
//! cargo run --release -p borg-experiments --bin profile
//! cargo run --release -p borg-experiments --bin profile -- --seed 7 --full
//! ```

use borg_query::{bridge, col, lit, Agg, Query, SortOrder};
use borg_serve::{
    generate_arrivals, open_loop_gap_us, overload_admission, ChaosConfig, Epoch, ModelCost,
    RecorderConfig, RetryPolicy, ServeConfig, ServeSim, SloConfig, Tier, WitnessConfig,
    WorkloadSpec,
};
use borg_sim::{CellSim, SimConfig};
use borg_telemetry::{
    breakdown_report, chrome_trace_json, fmt_ns, grid_breakdown, human_report, validate_json,
    Snapshot, Telemetry,
};
use borg_trace::time::Micros;
use borg_workload::cells::CellProfile;

const USAGE: &str =
    "usage: profile [--seed N] [--machines N] [--shards K] [--trace-out PATH] [--serve] [--full]";

struct Opts {
    seed: u64,
    machines: u64,
    shards: Option<usize>,
    trace_out: Option<std::path::PathBuf>,
    serve: bool,
    full: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        seed: 1,
        machines: 512,
        shards: None,
        trace_out: None,
        serve: false,
        full: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what}\n{USAGE}"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed needs a number").parse().expect("seed"),
            "--machines" => {
                opts.machines = value("--machines needs a number")
                    .parse()
                    .expect("machines");
            }
            "--shards" => {
                opts.shards = Some(value("--shards needs a number").parse().expect("shards"));
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out needs a path").into()),
            "--serve" => opts.serve = true,
            "--full" => opts.full = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}\n{USAGE}"),
        }
    }
    opts
}

fn print_spans(snap: &Snapshot, indent: &str) {
    for s in &snap.spans {
        println!(
            "{indent}{:pad$}{:<24} count={:<8} time={}",
            "",
            s.name,
            s.count,
            fmt_ns(s.total_ns),
            pad = s.depth as usize * 2,
        );
    }
}

fn main() {
    let opts = parse_opts();
    let profile = CellProfile::cell_2019('d');
    let mut cfg = SimConfig::tiny_for_tests(opts.seed);
    cfg.scale = (opts.machines as f64 / profile.machine_count as f64).min(1.0);
    cfg.horizon = Micros::from_days(1);
    cfg.snapshot_at = Micros::from_hours(12);
    cfg.telemetry = true;
    cfg.placement_shards = opts.shards;
    cfg.validate();

    println!(
        "=== profile: {}-machine cell-day (cell d, seed {}, {} placement shard(s)) ===\n",
        cfg.machine_count(&profile),
        opts.seed,
        cfg.effective_shards(cfg.machine_count(&profile)),
    );
    let outcome = CellSim::run_cell(&profile, &cfg);
    let snap = &outcome.telemetry;

    // 1. Where does the event loop spend its time?
    println!(
        "{}",
        breakdown_report(snap, "sim.ev", "event-loop breakdown by event kind")
    );

    // Machine-readable hot-path share, consumed by the regression guard
    // in scripts/check.sh --profile: Dispatch + UsageTick as a
    // percentage of total event-loop time.
    let rows = grid_breakdown(snap, "sim.ev");
    let total_ns: u64 = rows.iter().map(|r| r.total_ns).sum();
    let hot_ns: u64 = rows
        .iter()
        .filter(|r| r.kind == "dispatch" || r.kind == "usage_tick")
        .map(|r| r.total_ns)
        .sum();
    let hot_share = if total_ns == 0 {
        0.0
    } else {
        hot_ns as f64 * 100.0 / total_ns as f64
    };
    println!("guard: dispatch+usage_tick share = {hot_share:.1}% of event-loop time\n");

    // 2. Phase spans.
    println!("phase spans:");
    print_spans(snap, "  ");

    // 3. Placement-index behavior (engine plane).
    println!("\nscheduler index (engine plane):");
    for c in snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("sim.index."))
    {
        println!("  {:<34} {:>12}", c.name, c.value);
    }

    // 4. Round-trip through the query engine: analyze the snapshot with
    // the same operators the paper's tables use, and cross-check.
    let top = Query::from(bridge::spans_table(snap))
        .filter(col("depth").ge(lit(1i64)))
        .select(&["path", "count", "total_ns"])
        .sort_by("total_ns", SortOrder::Descending)
        .limit(5)
        .run()
        .expect("span query");
    println!("\ntop spans by total time (computed by borg-query over the snapshot):");
    for r in 0..top.num_rows() {
        let path = top.value(r, "path").expect("path");
        let ns = top
            .value(r, "total_ns")
            .expect("total_ns")
            .as_i64()
            .expect("int");
        println!(
            "  {:<40} {}",
            path.as_str().expect("str"),
            fmt_ns(ns.max(0) as u64)
        );
    }
    let det = Query::from(bridge::counters_table(snap))
        .filter(col("plane").eq(lit("det")))
        .group_by(
            &[],
            vec![Agg::sum("value", "total"), Agg::count("value", "rows")],
        )
        .run()
        .expect("counter rollup");
    let engine_total = det.value(0, "total").expect("total").as_f64().expect("num");
    let direct_total: u64 = snap
        .counters
        .iter()
        .filter(|c| c.plane == borg_telemetry::Plane::Deterministic)
        .map(|c| c.value)
        .sum();
    let ok = (engine_total - direct_total as f64).abs() < 0.5;
    println!(
        "round-trip check: query-engine sum of det counters = {engine_total:.0}, \
         snapshot sum = {direct_total} → {}",
        if ok { "match" } else { "MISMATCH" }
    );
    assert!(ok, "query-engine round trip disagrees with the snapshot");

    // 5. chrome://tracing export.
    let json = chrome_trace_json(snap);
    match validate_json(&json) {
        Ok(()) => println!("\nchrome trace: {} bytes, valid JSON", json.len()),
        Err(pos) => println!("\nchrome trace: INVALID JSON at byte {pos}"),
    }
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, &json).expect("trace written");
        println!("  written to {} (load at chrome://tracing)", path.display());
    }

    // 6. Ingestion-pipeline stage timings over the freshly written trace.
    let dir = std::env::temp_dir().join(format!("borg_profile_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    borg_trace::csv::write_trace_dir(&outcome.trace, &dir).expect("trace written");
    let mut core_tel = Telemetry::enabled();
    let (trace, quality) = borg_core::pipeline::load_trace_dir_with(&dir, &mut core_tel);
    std::fs::remove_dir_all(&dir).ok();
    let core_snap = core_tel.snapshot();
    println!(
        "\ningestion pipeline ({} rows; {}):",
        quality.rows_ingested,
        quality.annotation()
    );
    print_spans(&core_snap, "  ");

    // 7. Per-operator query stats for a sample analysis query.
    let events = borg_core::tables::instance_events_table(&trace).expect("events table");
    let mut query_tel = Telemetry::enabled();
    let by_event = Query::from(events)
        .filter(col("cpu_request").gt(lit(0.0)))
        .group_by(&["event"], vec![Agg::count("event", "n")])
        .sort_by("n", SortOrder::Descending)
        .run_with(&mut query_tel)
        .expect("sample query");
    let query_snap = query_tel.snapshot();
    println!(
        "\nquery-engine operator stats (sample: instance events with cpu_request > 0, by type):"
    );
    for r in 0..by_event.num_rows().min(4) {
        println!(
            "  {:<12} {:>8}",
            by_event
                .value(r, "event")
                .expect("event")
                .as_str()
                .expect("str"),
            by_event.value(r, "n").expect("n").as_i64().expect("int")
        );
    }
    println!("  per-operator telemetry:");
    for c in query_snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("query.op."))
    {
        println!("    {:<36} {:>10}", c.name, c.value);
    }
    print_spans(&query_snap, "    ");

    // 8. Serve-side observability (--serve): a short chaotic serve run
    // over the same trace; the witness's per-segment aggregates flow
    // through the identical registry/breakdown path as the event loop.
    if opts.serve {
        let epoch =
            std::sync::Arc::new(Epoch::from_trace("d", 0, &outcome.trace).expect("epoch tables"));
        let admission = overload_admission();
        let chaos = ChaosConfig::moderate(opts.seed);
        let gap = open_loop_gap_us(&admission, &ModelCost::default(), &chaos, 1.0, 1.5);
        let cfg = ServeConfig {
            admission,
            retry: RetryPolicy::default_with_seed(opts.seed),
            breaker_threshold: 5,
            breaker_cooloff_us: 50_000,
            chaos,
            slo: SloConfig::for_admission(&admission),
            witness: WitnessConfig::on(),
            recorder: RecorderConfig::standard(),
        };
        let spec = WorkloadSpec {
            seed: opts.seed,
            queries: 1_000,
            mean_gap_us: gap,
            tier_mix: [0.2, 0.4, 0.4],
            epochs: vec!["d".into()],
        };
        let arrivals = generate_arrivals(&spec);
        let r = ServeSim::default().run(cfg, std::slice::from_ref(&epoch), &arrivals);
        let mut serve_tel = Telemetry::enabled();
        r.witness.export_telemetry(&mut serve_tel);
        let serve_snap = serve_tel.snapshot();
        println!(
            "\n{}",
            breakdown_report(
                &serve_snap,
                "serve.seg",
                "serve span-segment breakdown (1000 queries, 1.5x load, moderate chaos)"
            )
        );
        println!("serve completion-latency quantiles:");
        for t in Tier::ALL {
            println!(
                "  {:<12} p50 {:>8}us  p99 {:>8}us",
                t.name(),
                r.stats.latency_quantile_us(t, 0.50),
                r.stats.latency_quantile_us(t, 0.99),
            );
        }
        println!(
            "serve alerts: {}, recorder snapshots: {}",
            r.alerts.len(),
            String::from_utf8_lossy(&r.recorder_dump)
                .lines()
                .filter(|l| l.starts_with("-- snapshot"))
                .count()
        );
    }

    if opts.full {
        println!("\n=== full simulator snapshot ===");
        print!("{}", human_report(snap));
    }
}
