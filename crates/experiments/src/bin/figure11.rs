//! Figure 11: CCDF of tasks per job by tier.

use borg_core::analyses::tasks_per_job;
use borg_experiments::{banner, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 11",
        "tasks per job by tier (calibrated model, uncapped)",
        &opts,
    );
    for (tier, ccdf) in tasks_per_job::model_ccdfs(400_000, opts.seed) {
        print_ccdf_summary(&format!("{tier}"), &ccdf);
        let p80 = ccdf.quantile_exceeding(0.20).unwrap_or(f64::NAN);
        let p95 = ccdf.quantile_exceeding(0.05).unwrap_or(f64::NAN);
        println!("    80%ile = {p80:.0} tasks, 95%ile = {p95:.0} tasks");
    }
    println!("\npaper 95%iles: beb 498, mid 67, free 21, prod 3; beb 80%ile 25, others 1");
}
