//! Figure 10: CCDF of job scheduling delay, per cell and per tier.

use borg_core::analyses::delay;
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, dump_series, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 10",
        "job scheduling delay (ready → first task running, seconds)",
        &opts,
    );
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    println!("--- by cell ---");
    print_ccdf_summary("2011", &delay::delay_ccdf(&y2011));
    for o in &y2019 {
        print_ccdf_summary(
            &format!("2019 cell {}", o.metrics.cell_name),
            &delay::delay_ccdf(o),
        );
    }
    println!("\n--- by tier (2019, pooled) ---");
    let refs: Vec<&_> = y2019.iter().collect();
    for (tier, ccdf) in delay::delay_ccdfs_by_tier(&refs) {
        print_ccdf_summary(&format!("{tier}"), &ccdf);
        dump_series(
            &opts,
            &format!("figure10_{tier}"),
            &ccdf.linear_series(0.0, 25.0, 100),
        );
    }
    dump_series(
        &opts,
        "figure10_2011",
        &delay::delay_ccdf(&y2011).linear_series(0.0, 25.0, 100),
    );
}
