//! Figure 2: hourly CPU/memory usage by tier, 2011 vs 2019.

use borg_core::analyses::utilization::{
    averaged_hourly_fractions, hourly_fractions, Dimension, Quantity,
};
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, dump_series, parse_opts};
use borg_trace::priority::Tier;

fn print_panel(name: &str, series: &std::collections::BTreeMap<Tier, Vec<f64>>) {
    println!("--- {name} (per-tier mean / min / max over hourly points) ---");
    for (tier, xs) in series {
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{tier:>5}: mean {mean:.3}  min {min:.3}  max {max:.3}  ({} hours)",
            xs.len()
        );
    }
}

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 2",
        "fraction of cell capacity used per hour, by tier",
        &opts,
    );
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    for o in std::iter::once(&y2011).chain(&y2019) {
        if let Some((strength, peak)) = borg_core::analyses::utilization::diurnal_cycle(o) {
            println!(
                "cell {:>4}: diurnal strength {strength:.3}, usage peaks near hour {peak:.1}",
                o.metrics.cell_name
            );
        }
    }
    println!();
    for (d, dn) in [(Dimension::Cpu, "CPU"), (Dimension::Memory, "memory")] {
        print_panel(
            &format!("2011 {dn} usage"),
            &hourly_fractions(&y2011, Quantity::Usage, d),
        );
        let averaged = averaged_hourly_fractions(&y2019, Quantity::Usage, d);
        print_panel(
            &format!("2019 {dn} usage (averaged across 8 cells)"),
            &averaged,
        );
        for (tier, series) in &averaged {
            let pts: Vec<(f64, f64)> = series
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64 / 24.0, v))
                .collect();
            dump_series(&opts, &format!("figure02_2019_{dn}_{tier}"), &pts);
        }
    }
}
