//! Figure 7: state transitions with occurrence counts (cell g).

use borg_core::analyses::transitions;
use borg_core::pipeline::simulate_cell;
use borg_experiments::{banner, parse_opts};
use borg_workload::cells::CellProfile;

fn main() {
    let opts = parse_opts();
    banner("Figure 7", "state-transition counts in cell g", &opts);
    let o = simulate_cell(&CellProfile::cell_2019('g'), opts.scale, opts.seed);
    let t = transitions::combined_transitions(&o);
    println!("{}", transitions::render_transitions(&t));
    let (max, min) = transitions::spread(&t);
    println!("most common : least common = {max} : {min}");
}
