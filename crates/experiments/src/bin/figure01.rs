//! Figure 1: frequency of machine shapes (CPU × memory bubbles).

use borg_core::analyses::shapes;
use borg_core::pipeline::simulate_2019_all;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 1",
        "machine-shape frequency by CPU and memory",
        &opts,
    );
    let y2019 = simulate_2019_all(opts.scale, opts.seed);
    let refs: Vec<&_> = y2019.iter().collect();
    let bubbles = shapes::shape_bubbles(&refs);
    println!("{}", shapes::render_shapes(&bubbles));
    println!("distinct shapes: {}", bubbles.len());
}
