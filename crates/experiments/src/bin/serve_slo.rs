//! SLO drill-down: one chaotic "incident" run through the full
//! observability stack — burn-rate alerts, error budgets, the flight
//! recorder, and the p99-exemplar → span-tree drill-down — plus a
//! chaos-off control run proving the alert pipeline is quiet when the
//! service is healthy.
//!
//! The incident run replays byte-identically (span-tree export, alert
//! sequence, recorder dump), demonstrating DESIGN.md §17's core claim:
//! observability artifacts live on the deterministic plane. The
//! drill-down walks the exact path an operator would: p99 bucket →
//! exemplar trace id → rendered span tree.

use borg_core::pipeline::simulate_cell;
use borg_experiments::{banner, parse_opts};
use borg_serve::{
    generate_arrivals, open_loop_gap_us, overload_admission, ChaosConfig, Epoch, ModelCost,
    RecorderConfig, RetryPolicy, ServeConfig, ServeSim, SloConfig, Tier, WitnessConfig,
    WorkloadSpec,
};
use borg_telemetry::{trace_events_json, validate_json, Histogram};
use borg_workload::cells::CellProfile;
use std::sync::Arc;

const QUERIES: usize = 2_000;
/// Incident load relative to capacity: hot enough to shed and miss.
const INCIDENT_LOAD: f64 = 1.5;
/// Control load: comfortably under capacity.
const CONTROL_LOAD: f64 = 0.5;

fn main() {
    let opts = parse_opts();
    banner(
        "Serve SLO",
        "burn-rate alerts, flight recorder, exemplar drill-down",
        &opts,
    );

    let outcome = simulate_cell(&CellProfile::cell_2019('a'), opts.scale, opts.seed);
    let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"));
    let admission = overload_admission();
    let cost = ModelCost::default();
    let slo_cfg = SloConfig::for_admission(&admission);
    let cfg_for = |seed: u64, chaos: ChaosConfig| ServeConfig {
        admission,
        retry: RetryPolicy::default_with_seed(seed),
        breaker_threshold: 5,
        breaker_cooloff_us: 50_000,
        chaos,
        slo: slo_cfg,
        witness: WitnessConfig::on(),
        recorder: RecorderConfig::standard(),
    };
    let run = |seed: u64, chaos: ChaosConfig, load: f64| {
        let gap = open_loop_gap_us(&admission, &cost, &chaos, 1.0, load);
        let spec = WorkloadSpec {
            seed,
            queries: QUERIES,
            mean_gap_us: gap,
            tier_mix: [0.10, 0.40, 0.50],
            epochs: vec!["a".into()],
        };
        let arrivals = generate_arrivals(&spec);
        ServeSim::default().run(
            cfg_for(seed, chaos),
            std::slice::from_ref(&epoch),
            &arrivals,
        )
    };

    // Incident: overload with elevated panics, replayed twice to pin
    // every observability artifact to the deterministic plane.
    let chaos = ChaosConfig {
        panic_prob: 0.08,
        ..ChaosConfig::moderate(opts.seed)
    };
    let r = run(opts.seed, chaos, INCIDENT_LOAD);
    let r2 = run(opts.seed, chaos, INCIDENT_LOAD);
    assert_eq!(
        r.trace_export(),
        r2.trace_export(),
        "span-tree export not byte-identical"
    );
    assert_eq!(r.alerts, r2.alerts, "alert sequence not byte-identical");
    assert_eq!(
        r.recorder_dump, r2.recorder_dump,
        "flight-recorder dump not byte-identical"
    );

    println!("incident: {QUERIES} queries at {INCIDENT_LOAD}x load, 8% panics, replayed 2x");
    println!(
        "  {:>11} {:>9} {:>7} {:>6} {:>5} {:>9}",
        "tier", "objective", "target", "total", "bad", "budget"
    );
    for t in Tier::ALL {
        let i = t.index();
        let b = &r.budgets[i];
        println!(
            "  {:>11} {:>7}ms {:>7.3} {:>6} {:>5} {:>8.0}%",
            t.name(),
            slo_cfg.tiers[i].latency_us / 1_000,
            slo_cfg.tiers[i].target,
            b.total,
            b.bad,
            b.remaining_frac() * 100.0,
        );
    }

    println!("\nalert log ({} lines):", r.alerts.len());
    for line in &r.alerts {
        println!("  {line}");
    }
    assert!(
        !r.alerts.is_empty(),
        "an 8%-panic overload incident must fire at least one alert"
    );

    println!("\nflight recorder:");
    for line in String::from_utf8_lossy(&r.recorder_dump).lines() {
        // Headers only; the ring contents are for post-mortems.
        if line.starts_with("recorder")
            || line.starts_with("observed")
            || line.starts_with("-- snapshot")
        {
            println!("  {line}");
        }
    }

    // The operator's drill-down: p99 bucket -> exemplar -> span tree.
    println!("\np99 exemplar drill-down:");
    let mut drilled = false;
    for t in Tier::ALL {
        let hist = &r.stats.latency_us[t.index()];
        let Some((bucket, tid)) = r.witness.exemplar_for(t, hist, 0.99) else {
            continue;
        };
        let tr = r
            .witness
            .trace_by_id(tid)
            .expect("every exemplar resolves to a collected trace");
        println!(
            "  {} p99 bucket {} (<= {}us) -> trace {:016x}",
            t.name(),
            bucket,
            Histogram::bucket_bound(bucket),
            tid
        );
        if t == Tier::Prod {
            for line in tr.render().lines() {
                println!("    {line}");
            }
            drilled = true;
        }
    }
    assert!(drilled, "prod must have a p99 exemplar to drill into");

    // The same traces export as a chrome-tracing file and as a table
    // queryable by the engine they describe.
    let events = r.witness.chrome_events();
    let json = trace_events_json(&events);
    validate_json(&json).expect("chrome trace export is valid json");
    let table = r.witness.to_table().expect("segment table");
    println!(
        "\nexports: chrome trace {} events ({} bytes), segment table {} rows",
        events.len(),
        json.len(),
        table.num_rows()
    );

    // Control: no chaos, comfortable load — zero alerts, zero prod
    // misses, zero breaker opens. (Arrival bursts may still trip the
    // shed-spike trigger on the scavenger tier; that is load shaping
    // working, not an incident.)
    for seed in [opts.seed, opts.seed + 1, opts.seed + 2] {
        let c = run(seed, ChaosConfig::off(), CONTROL_LOAD);
        assert!(
            c.alerts.is_empty(),
            "seed {seed}: healthy control run fired alerts: {:?}",
            c.alerts
        );
        let dump = String::from_utf8_lossy(&c.recorder_dump).into_owned();
        for quiet in ["observed prod_deadline_miss 0", "observed breaker_open 0"] {
            assert!(
                dump.contains(quiet),
                "seed {seed}: healthy control run missing `{quiet}`:\n{dump}"
            );
        }
        let snapshots = dump
            .lines()
            .filter(|l| l.starts_with("-- snapshot"))
            .count();
        println!(
            "control seed {seed}: 0 alerts, 0 prod misses, {} shed-burst snapshot(s), {} traces",
            snapshots,
            c.witness.len()
        );
    }
    println!("serve slo: OK (incident replayable, drill-down resolved, control silent)");
}
