//! Table 1: comparison between the 2011 and 2019 traces.

use borg_core::analyses::summary;
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner("Table 1", "trace summary comparison", &opts);
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    let s11 = summary::summarize_era("May 2011", &[&y2011]);
    let refs: Vec<&_> = y2019.iter().collect();
    let s19 = summary::summarize_era("May 2019", &refs);
    println!("{}", summary::render_table1(&s11, &s19));
    println!("note: machine counts are scaled; the real traces cover 12.6k / 96.4k machines.");
}
