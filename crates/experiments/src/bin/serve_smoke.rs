//! Fast serve smoke: real threads, real stalls, real panics, hard
//! assertions. This is what `scripts/check.sh --serve` runs.
//!
//! Builds a tiny epoch, then drives 200 mixed-tier queries through the
//! wall-clock smoke harness (`borg_serve::run_smoke`): a real
//! `ServePool`, chaos-injected worker stalls (1–10 ms) and panics (5%),
//! and a slow epoch load. Asserts the overload-robustness floor:
//!
//! * clean drain — every query reaches exactly one terminal outcome;
//! * zero prod-tier deadline misses and zero prod sheds;
//! * the whole run (including the epoch build) stays well under 10 s.

use borg_core::pipeline::simulate_cell;
use borg_experiments::{banner, parse_opts};
use borg_serve::{run_smoke, Epoch, Tier};
use borg_workload::cells::CellProfile;
use std::sync::Arc;

fn main() {
    let opts = parse_opts();
    banner(
        "Serve smoke",
        "wall-clock chaos smoke for borg-serve",
        &opts,
    );

    let outcome = simulate_cell(&CellProfile::cell_2019('a'), opts.scale, opts.seed);
    let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"));

    // Chaos-injected worker panics are expected (and caught); keep them
    // out of the output so real failures stand out.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.starts_with("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));
    let report = run_smoke(Arc::clone(&epoch), opts.seed);
    let _ = std::panic::take_hook();

    println!(
        "  {:>11} {:>9} {:>6} {:>7} {:>5} {:>6} {:>7} {:>9} {:>9}",
        "tier", "submitted", "done", "expired", "shed", "failed", "retries", "p50_ms", "p99_ms"
    );
    for t in Tier::ALL {
        let i = t.index();
        println!(
            "  {:>11} {:>9} {:>6} {:>7} {:>5} {:>6} {:>7} {:>9.1} {:>9.1}",
            t.name(),
            report.stats.submitted[i],
            report.stats.done[i],
            report.stats.expired[i],
            report.stats.sheds(t),
            report.stats.failed[i],
            report.stats.retries[i],
            report.stats.latency_quantile_us(t, 0.50) as f64 / 1_000.0,
            report.stats.latency_quantile_us(t, 0.99) as f64 / 1_000.0,
        );
    }
    println!(
        "  drained={} outcomes={} results={} breaker_trips={} elapsed={:.2}s",
        report.drained,
        report.outcomes.len(),
        report.results_returned,
        report.breaker_trips,
        report.elapsed_us as f64 / 1e6
    );

    assert!(report.drained, "service did not drain cleanly");
    assert_eq!(report.outcomes.len(), 200, "an outcome per query");
    assert_eq!(
        report.prod_deadline_misses(),
        0,
        "prod-tier deadline misses under injected stalls"
    );
    assert_eq!(report.stats.sheds(Tier::Prod), 0, "prod was shed");
    let done: u64 = report.stats.done.iter().sum();
    assert_eq!(
        done as usize, report.results_returned,
        "every Done outcome returned result bytes"
    );
    println!("serve smoke: OK");
}
