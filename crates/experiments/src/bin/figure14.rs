//! Figure 14: CCDF of peak NCU slack by vertical-scaling mode.

use borg_core::analyses::autoscaling;
use borg_core::pipeline::simulate_2019_all;
use borg_experiments::{banner, dump_series, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner("Figure 14", "peak NCU slack (%) by autopilot mode", &opts);
    let y2019 = simulate_2019_all(opts.scale, opts.seed);
    let refs: Vec<&_> = y2019.iter().collect();
    for (mode, ccdf) in autoscaling::slack_ccdfs(&refs) {
        print_ccdf_summary(mode.name(), &ccdf);
        dump_series(
            &opts,
            &format!("figure14_{}", mode.name()),
            &ccdf.linear_series(0.0, 100.0, 101),
        );
    }
    if let Some(r) = autoscaling::full_vs_manual_median_reduction(&refs) {
        println!(
            "\nmedian slack reduction, fully autoscaled vs manual: {r:.1} points (paper: >25)"
        );
    }
}
