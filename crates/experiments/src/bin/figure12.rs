//! Figure 12: log-log CCDF of per-job resource-hours.

use borg_core::analyses::consumption;
use borg_core::report::render_series;
use borg_experiments::{banner, dump_series, parse_opts};
use borg_workload::integral::IntegralModel;

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 12",
        "CCDF of usage-integral per job (log-log)",
        &opts,
    );
    let n = 1_000_000;
    let (cpu19, mem19) = consumption::era_samples(&IntegralModel::model_2019(), n, opts.seed);
    let (cpu11, mem11) = consumption::era_samples(&IntegralModel::model_2011(), n, opts.seed ^ 1);
    for (name, file, xs) in [
        ("2019 CPU (NCU-hours)", "figure12_2019_cpu", &cpu19),
        ("2019 memory (NMU-hours)", "figure12_2019_mem", &mem19),
        ("2011 CPU (NCU-hours)", "figure12_2011_cpu", &cpu11),
        ("2011 memory (NMU-hours)", "figure12_2011_mem", &mem11),
    ] {
        let series = consumption::figure12_series(xs, 23);
        println!("{}", render_series(name, &series));
        dump_series(&opts, file, &consumption::figure12_series(xs, 120));
    }
}
