//! Ablations: quantify the design choices DESIGN.md calls out.
//!
//! Three mechanisms are switched off one at a time against a shared
//! baseline cell:
//!
//! * **equivalence-class scheduling** (Borg evaluates a job's identical
//!   tasks once) — measured on scheduling delay;
//! * **batch-admission queueing** (§3) — measured on delay and evictions;
//! * **Autopilot vertical scaling** (§8) — measured on peak NCU slack.

use borg_core::pipeline::SimScale;
use borg_experiments::{banner, parse_opts};
use borg_sim::{CellOutcome, CellSim, SimConfig};
use borg_workload::cells::CellProfile;

struct Variant {
    name: &'static str,
    configure: fn(&mut SimConfig),
}

fn run(profile: &CellProfile, base: &SimConfig, v: &Variant) -> CellOutcome {
    let mut cfg = base.clone();
    (v.configure)(&mut cfg);
    CellSim::run_cell(profile, &cfg)
}

fn delay_stats(o: &CellOutcome) -> (f64, f64) {
    let mut xs: Vec<f64> = o.metrics.delays.iter().map(|d| d.delay_secs).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let med = xs.get(xs.len() / 2).copied().unwrap_or(f64::NAN);
    let p90 = xs
        .get((xs.len() as f64 * 0.9) as usize)
        .copied()
        .unwrap_or(f64::NAN);
    (med, p90)
}

fn median_slack(o: &CellOutcome) -> f64 {
    let mut xs: Vec<f64> = o.metrics.slack.iter().map(|s| s.slack * 100.0).collect();
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let opts = parse_opts();
    banner("Ablation", "design-choice ablations on cell d", &opts);
    let profile = CellProfile::cell_2019('d');
    let base = SimScale::Small.config(opts.seed).clone();

    let variants = [
        Variant {
            name: "baseline",
            configure: |_| {},
        },
        Variant {
            name: "no equivalence-class caching",
            configure: |c| c.equivalence_class_speedup = 1.0,
        },
        Variant {
            name: "no batch-admission queue",
            configure: |c| c.disable_batch_queue = true,
        },
        Variant {
            name: "no autopilot",
            configure: |c| c.disable_autopilot = true,
        },
    ];

    println!(
        "{:<32} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "variant", "med delay", "p90 delay", "med slack %", "evictions", "cpu util"
    );
    for v in &variants {
        let o = run(&profile, &base, v);
        let (med, p90) = delay_stats(&o);
        let evictions: u64 = o.metrics.evictions_by_collection.values().sum();
        let util: f64 = o.metrics.average_cpu_util_by_tier().values().sum();
        println!(
            "{:<32} {:>9.2}s {:>9.0}s {:>12.1} {:>12} {:>12.3}",
            v.name,
            med,
            p90,
            median_slack(&o),
            evictions,
            util
        );
    }
    println!("\nexpected: removing equivalence-class caching slows wide-job scheduling;");
    println!("removing the batch queue floods the scheduler with beb tasks; removing");
    println!("autopilot leaves all the peak slack unreclaimed (Figure 14 collapses).");
}
