//! §5.1 and §5.2: alloc-set and termination statistics.

use borg_core::analyses::{allocs, terminations};
use borg_core::pipeline::simulate_2019_all;
use borg_core::report::pct;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner(
        "Section 5",
        "alloc sets (§5.1) and terminations (§5.2)",
        &opts,
    );
    let y2019 = simulate_2019_all(opts.scale, opts.seed);
    let refs: Vec<&_> = y2019.iter().collect();

    let a = allocs::alloc_stats(&refs);
    println!("--- §5.1 alloc sets (paper values in parentheses) ---");
    println!(
        "alloc sets among collections: {} (2%)",
        pct(a.alloc_set_collection_fraction)
    );
    println!(
        "alloc sets' share of CPU allocation: {} (20%)",
        pct(a.alloc_cpu_allocation_share)
    );
    println!(
        "alloc sets' share of RAM allocation: {} (18%)",
        pct(a.alloc_mem_allocation_share)
    );
    println!(
        "jobs running in an alloc set: {} (15%)",
        pct(a.jobs_in_alloc_fraction)
    );
    println!(
        "of those, production tier: {} (95%)",
        pct(a.in_alloc_prod_fraction)
    );
    println!(
        "memory utilization in-alloc vs others: {} vs {} (73% vs 41%)",
        pct(a.mem_fill_in_alloc),
        pct(a.mem_fill_outside)
    );

    let t = terminations::termination_stats(&refs);
    println!("\n--- §5.2 terminations ---");
    println!(
        "collections with any eviction: {} (3.2%)",
        pct(t.collections_with_evictions)
    );
    println!(
        "evicted collections below production: {} (96.6%)",
        pct(t.evicted_nonprod_fraction)
    );
    println!(
        "production collections evicted: {} (<0.2%)",
        pct(t.prod_collections_evicted)
    );
    println!(
        "evicted collections with exactly one eviction: {} (52%)",
        pct(t.single_eviction_fraction)
    );
    println!(
        "kill rate with parent: {} (87%)",
        pct(t.kill_rate_with_parent)
    );
    println!(
        "kill rate without parent: {} (41%)",
        pct(t.kill_rate_without_parent)
    );
}
