//! Runs the complete evaluation battery — every table and figure — off a
//! single pair of era simulations. The month-scale output of this binary
//! is what EXPERIMENTS.md records.

use borg_core::analyses::utilization::{render_per_cell_bars, Dimension, Quantity};
use borg_core::analyses::{
    allocs, autoscaling, consumption, correlation, delay, machine_util, queueing, shapes,
    submission, summary, tasks_per_job, terminations, transitions,
};
use borg_core::pipeline::simulate_both_eras;
use borg_core::report::pct;
use borg_experiments::{banner, labelled, parse_opts, print_ccdf_summary};
use borg_workload::integral::IntegralModel;

fn main() {
    let opts = parse_opts();
    banner("ALL", "complete evaluation battery", &opts);
    let scale = opts.scale.config(opts.seed).scale;
    // lint: nondeterministic-source-ok (wall-clock progress display only; no result depends on it)
    let t0 = std::time::Instant::now();
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    println!(
        "simulated 1 + 8 cells in {:.1}s\n",
        t0.elapsed().as_secs_f64()
    );
    let refs: Vec<&_> = y2019.iter().collect();

    // ---- Table 1 -------------------------------------------------------
    println!("\n================ Table 1 ================");
    let s11 = summary::summarize_era("May 2011", &[&y2011]);
    let s19 = summary::summarize_era("May 2019", &refs);
    println!("{}", summary::render_table1(&s11, &s19));

    // ---- Figure 1 ------------------------------------------------------
    println!("\n================ Figure 1 ================");
    let bubbles = shapes::shape_bubbles(&refs);
    println!("{} distinct 2019 machine shapes; top 5:", bubbles.len());
    println!(
        "{}",
        shapes::render_shapes(&bubbles[..bubbles.len().min(5)])
    );

    // ---- Figures 2–5 ---------------------------------------------------
    println!("\n================ Figures 3 and 5 (averages; Figures 2/4 are their hourly series) ================");
    let mut rows = vec![("2011", &y2011)];
    rows.extend(labelled(&y2019));
    println!("--- usage, CPU ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Usage, Dimension::Cpu)
    );
    println!("--- usage, memory ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Usage, Dimension::Memory)
    );
    println!("--- allocation, CPU ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Allocation, Dimension::Cpu)
    );
    println!("--- allocation, memory ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Allocation, Dimension::Memory)
    );

    // ---- Figure 6 ------------------------------------------------------
    println!("\n================ Figure 6 ================");
    print_ccdf_summary("2011 machine CPU util", &machine_util::cpu_ccdf(&y2011));
    for o in &y2019 {
        print_ccdf_summary(
            &format!("2019 cell {} CPU util", o.metrics.cell_name),
            &machine_util::cpu_ccdf(o),
        );
    }

    // ---- Figure 7 ------------------------------------------------------
    println!("\n================ Figure 7 (cell g) ================");
    let g = y2019
        .iter()
        .find(|o| o.metrics.cell_name == "g")
        .expect("cell g simulated");
    let t = transitions::combined_transitions(g);
    println!("{}", transitions::render_transitions(&t));

    // ---- Figures 8 and 9 ------------------------------------------------
    println!("\n================ Figures 8 and 9 ================");
    let c2011 = submission::job_rate_ccdf(&y2011, scale);
    let agg = submission::aggregate_job_rate_ccdf(&y2019, scale);
    print_ccdf_summary("job rate 2011 (jobs/hour)", &c2011);
    print_ccdf_summary("job rate 2019 aggregate", &agg);
    println!(
        "median job-rate growth: {:.2}x (paper: 3.7x)",
        agg.median().unwrap_or(0.0) / c2011.median().unwrap_or(1.0)
    );
    let (new11, all11) = submission::task_rate_ccdfs(&y2011, scale);
    print_ccdf_summary("task rate 2011 new", &new11);
    print_ccdf_summary("task rate 2011 all", &all11);
    let churn19: f64 = y2019.iter().map(submission::churn_ratio).sum::<f64>() / y2019.len() as f64;
    println!(
        "reschedule:new — 2011 {:.2} (paper 0.66), 2019 {:.2} (paper 2.26)",
        submission::churn_ratio(&y2011),
        churn19
    );

    // ---- Figure 10 -----------------------------------------------------
    println!("\n================ Figure 10 ================");
    print_ccdf_summary("delay 2011 (s)", &delay::delay_ccdf(&y2011));
    print_ccdf_summary("delay 2019 pooled (s)", &delay::pooled_delay_ccdf(&refs));
    for (tier, ccdf) in delay::delay_ccdfs_by_tier(&refs) {
        print_ccdf_summary(&format!("delay 2019 {tier} (s)"), &ccdf);
    }

    // ---- Figure 11 -----------------------------------------------------
    println!("\n================ Figure 11 ================");
    for (tier, ccdf) in tasks_per_job::model_ccdfs(400_000, opts.seed) {
        let p80 = ccdf.quantile_exceeding(0.20).unwrap_or(f64::NAN);
        let p95 = ccdf.quantile_exceeding(0.05).unwrap_or(f64::NAN);
        println!("{tier:>5}: 80%ile {p80:.0} tasks, 95%ile {p95:.0} tasks");
    }
    println!("paper 95%iles: beb 498, mid 67, free 21, prod 3");

    // ---- Table 2 / Figures 12–13 ----------------------------------------
    println!("\n================ Table 2 ================");
    let cols = consumption::table2(2_000_000, opts.seed).expect("table 2 computes");
    println!("{}", consumption::render_table2(&cols));
    println!("\n================ Figure 13 ================");
    let f13 = correlation::figure13(1_000_000, opts.seed).expect("figure 13 computes");
    println!(
        "Pearson correlation of bucketed medians: {:.3} (paper: 0.97)",
        f13.pearson
    );

    // ---- Figure 14 -----------------------------------------------------
    println!("\n================ Figure 14 ================");
    for (mode, ccdf) in autoscaling::slack_ccdfs(&refs) {
        print_ccdf_summary(&format!("slack {} (%)", mode.name()), &ccdf);
    }
    if let Some(r) = autoscaling::full_vs_manual_median_reduction(&refs) {
        println!("median slack reduction full vs manual: {r:.1} points (paper: >25)");
    }

    // ---- Section 5 -----------------------------------------------------
    println!("\n================ Section 5 ================");
    let a = allocs::alloc_stats(&refs);
    println!(
        "alloc sets among collections: {} (2%)",
        pct(a.alloc_set_collection_fraction)
    );
    println!(
        "alloc CPU allocation share: {} (20%)",
        pct(a.alloc_cpu_allocation_share)
    );
    println!(
        "alloc RAM allocation share: {} (18%)",
        pct(a.alloc_mem_allocation_share)
    );
    println!("jobs in allocs: {} (15%)", pct(a.jobs_in_alloc_fraction));
    println!(
        "in-alloc jobs at production: {} (95%)",
        pct(a.in_alloc_prod_fraction)
    );
    println!(
        "memory fill in/out of allocs: {} / {} (73% / 41%)",
        pct(a.mem_fill_in_alloc),
        pct(a.mem_fill_outside)
    );
    let term = terminations::termination_stats(&refs);
    println!(
        "collections with evictions: {} (3.2%)",
        pct(term.collections_with_evictions)
    );
    println!(
        "evicted below production: {} (96.6%)",
        pct(term.evicted_nonprod_fraction)
    );
    println!(
        "production collections evicted: {} (<0.2%)",
        pct(term.prod_collections_evicted)
    );
    println!(
        "single-eviction share: {} (52%)",
        pct(term.single_eviction_fraction)
    );
    println!(
        "kill rate with/without parent: {} / {} (87% / 41%)",
        pct(term.kill_rate_with_parent),
        pct(term.kill_rate_without_parent)
    );

    // ---- Section 7.3 ---------------------------------------------------
    println!("\n================ Section 7.3 ================");
    let (cpu19, _) = consumption::era_samples(&IntegralModel::model_2019(), 1_000_000, opts.seed);
    for r in queueing::queueing_rows(&cpu19, &[0.3, 0.5, 0.7]).expect("valid loads") {
        println!(
            "rho {:.1}: full-mix delay {:.0} service times, mice-only {:.4}, benefit {:.0}x",
            r.rho, r.delay_full, r.delay_mice, r.benefit
        );
    }

    println!("\ntotal wall time {:.1}s", t0.elapsed().as_secs_f64());
}
