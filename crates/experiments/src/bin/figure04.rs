//! Figure 4: hourly CPU/memory allocation by tier (over-commitment).

use borg_core::analyses::utilization::{
    averaged_hourly_fractions, hourly_fractions, Dimension, Quantity,
};
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 4",
        "fraction of cell capacity allocated per hour",
        &opts,
    );
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    for (d, dn) in [(Dimension::Cpu, "CPU"), (Dimension::Memory, "memory")] {
        let a2011 = hourly_fractions(&y2011, Quantity::Allocation, d);
        let a2019 = averaged_hourly_fractions(&y2019, Quantity::Allocation, d);
        let total = |m: &std::collections::BTreeMap<_, Vec<f64>>| -> f64 {
            m.values()
                .map(|xs| xs.iter().sum::<f64>() / xs.len().max(1) as f64)
                .sum()
        };
        println!(
            "{dn}: total allocation 2011 = {:.2} of capacity, 2019 = {:.2} (paper: both above 1.0 in 2019)",
            total(&a2011),
            total(&a2019)
        );
    }
}
