//! Fault sweep: machine failures, trace corruption, and the repair loop.
//!
//! Part 1 sweeps the machine-failure rate and reports how eviction
//! causes shift (the paper's §5.2 eviction-rate discussion): at Borg-like
//! rates failures are a minor eviction cause next to preemption and
//! maintenance, but the tail grows quickly.
//!
//! Part 2 closes the degradation loop: a clean trace is corrupted by a
//! lossy writer (drops, duplicates, reorders, truncation, garbled
//! lines), re-ingested leniently, repaired, and re-validated — printing
//! the fault ledger against the repair report so every injected fault is
//! accounted for.

use borg_core::pipeline::{load_trace_dir, simulate_cell};
use borg_experiments::{banner, parse_opts};
use borg_sim::{CellSim, CorruptionConfig, FaultConfig, SimConfig};
use borg_trace::validate::validate;
use borg_workload::cells::CellProfile;

fn main() {
    let opts = parse_opts();
    banner("Fault sweep", "machine failures & trace degradation", &opts);

    let profile = CellProfile::cell_2019('a');

    // Part 1: eviction causes vs failure rate.
    println!(
        "failures/machine-month vs outcomes (cell a, seed {}):",
        opts.seed
    );
    println!(
        "  {:>10} {:>9} {:>9} {:>6} {:>22}",
        "rate", "failures", "repaired", "lost", "evictions by cause"
    );
    for rate in [0.0, 0.3, 1.0, 3.0, 10.0] {
        let faults = if rate > 0.0 {
            Some(FaultConfig {
                failures_per_machine_month: rate,
                ..FaultConfig::from_model(&profile.failure_model)
            })
        } else {
            None
        };
        let cfg = SimConfig {
            faults,
            ..opts.scale.config(opts.seed)
        };
        let o = CellSim::run_cell(&profile, &cfg);
        let causes: Vec<String> = o
            .metrics
            .evictions_by_cause
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect();
        println!(
            "  {:>10.1} {:>9} {:>9} {:>6} {:>22}",
            rate,
            o.metrics.machine_failures,
            o.metrics.machine_repairs,
            o.metrics.tasks_lost,
            causes.join(" ")
        );
        let v = validate(&o.trace);
        if !v.is_empty() {
            println!("    !! {} validation violations at rate {rate}", v.len());
        }
    }

    // Part 2: the closed degradation loop.
    println!("\nclosed loop: generate → corrupt → lenient read → repair → validate");
    let outcome = simulate_cell(&profile, opts.scale, opts.seed);
    for (name, cc) in [
        ("lossy", CorruptionConfig::lossy()),
        ("harsh", CorruptionConfig::harsh()),
    ] {
        let dir =
            std::env::temp_dir().join(format!("borg_fault_sweep_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (corrupted, mut ledger) = borg_sim::corrupt_trace(&outcome.trace, &cc, opts.seed);
        borg_sim::write_trace_dir_lossy(&corrupted, &dir, &cc, opts.seed, &mut ledger)
            .expect("lossy write");
        let (repaired, quality) = load_trace_dir(&dir);
        let violations = validate(&repaired);
        println!("\n  profile `{name}`:");
        println!("    injected: {}", ledger.summary());
        println!("    {}", quality.annotation());
        println!(
            "    post-repair validation: {} violations",
            violations.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
