//! Figure 3: average utilization by tier, 2011 and each 2019 cell.

use borg_core::analyses::utilization::{render_per_cell_bars, Dimension, Quantity};
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, labelled, parse_opts};

fn main() {
    let opts = parse_opts();
    banner("Figure 3", "average usage by tier per cell", &opts);
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    let mut rows = vec![("2011", &y2011)];
    rows.extend(labelled(&y2019));
    println!("--- CPU (fraction of cell capacity) ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Usage, Dimension::Cpu)
    );
    println!("--- memory ---");
    println!(
        "{}",
        render_per_cell_bars(&rows, Quantity::Usage, Dimension::Memory)
    );
}
