//! Figure 8: CCDF of the job submission rate per hour.

use borg_core::analyses::submission;
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, dump_series, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 8",
        "job submissions per hour (full-cell rates)",
        &opts,
    );
    let scale = opts.scale.config(opts.seed).scale;
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    let c2011 = submission::job_rate_ccdf(&y2011, scale);
    let agg = submission::aggregate_job_rate_ccdf(&y2019, scale);
    print_ccdf_summary("2011", &c2011);
    print_ccdf_summary("2019 aggregate", &agg);
    for o in &y2019 {
        print_ccdf_summary(
            &format!("2019 cell {}", o.metrics.cell_name),
            &submission::job_rate_ccdf(o, scale),
        );
    }
    dump_series(&opts, "figure08_2011", &c2011.steps());
    dump_series(&opts, "figure08_2019_aggregate", &agg.steps());
    let growth = agg.median().unwrap_or(0.0) / c2011.median().unwrap_or(1.0);
    println!("\nmedian growth 2011 → 2019: {growth:.2}x (paper: 3.7x)");
}
