//! §9 in practice: generate traces and run the full invariant validator.
//!
//! The paper's trace-generation lessons (§9) center on automated
//! validation of logical invariants. This binary simulates both eras,
//! validates every table, prints the violation summary, and then
//! deliberately corrupts the trace to show the validator catching each
//! §9 invariant class.

use borg_core::pipeline::{simulate_2011, simulate_cell};
use borg_experiments::{banner, parse_opts};
use borg_trace::state::EventType;
use borg_trace::validate::{validate, validate_with, ValidateConfig};
use borg_workload::cells::CellProfile;

fn main() {
    let opts = parse_opts();
    banner("Section 9", "automated trace validation", &opts);

    let y2019 = simulate_cell(&CellProfile::cell_2019('c'), opts.scale, opts.seed);
    let y2011 = simulate_2011(opts.scale, opts.seed);
    for o in [&y2011, &y2019] {
        let v = validate(&o.trace);
        println!(
            "cell {:>4}: {} events across 4 tables → {} violations",
            o.trace.cell_name,
            o.trace.event_count(),
            v.len()
        );
    }

    // Failure injection: each §9 invariant class, caught.
    println!("\nfailure injection (deliberate corruptions):");
    let base = y2019.trace;

    let mut t1 = base.clone();
    if let Some(ev) = t1.collection_events.first().cloned() {
        let mut kill = ev;
        kill.event_type = EventType::Kill;
        kill.time = borg_trace::time::Micros::ZERO;
        t1.collection_events.insert(0, kill);
    }
    report("termination recorded before submit", &t1);

    let mut t2 = base.clone();
    if let Some(u) = t2.usage.first_mut() {
        u.avg_usage.cpu = 50.0; // single task "using" 50 machines
    }
    report("machine over physical capacity", &t2);

    let mut t3 = base.clone();
    if let Some(u) = t3.usage.first_mut() {
        u.machine_id = borg_trace::machine::MachineId(9_999_999);
    }
    report("usage on a machine never added", &t3);

    let mut t4 = base.clone();
    if let Some(u) = t4.usage.first_mut() {
        std::mem::swap(&mut u.start, &mut u.end);
    }
    report("inverted usage window", &t4);

    let mut t5 = base.clone();
    if let Some(u) = t5.usage.first_mut() {
        u.cpu_histogram.0[20] = 0.0;
        u.cpu_histogram.0[0] = 1.0;
    }
    report("non-monotone CPU percentile histogram", &t5);
}

fn report(what: &str, trace: &borg_trace::trace::Trace) {
    let v = validate_with(
        trace,
        &ValidateConfig {
            capacity_tolerance: 1.05,
            max_violations: 5,
        },
    );
    let caught = if v.is_empty() { "MISSED" } else { "caught" };
    println!(
        "  {caught}: {what} → {}",
        v.first().map_or("-".to_string(), |x| x.to_string())
    );
}
