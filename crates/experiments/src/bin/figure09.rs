//! Figure 9: CCDF of task submissions per hour, new vs all.

use borg_core::analyses::submission;
use borg_core::pipeline::simulate_both_eras;
use borg_experiments::{banner, parse_opts, print_ccdf_summary};

fn main() {
    let opts = parse_opts();
    banner(
        "Figure 9",
        "task submissions per hour, new tasks vs all tasks",
        &opts,
    );
    let scale = opts.scale.config(opts.seed).scale;
    let (y2011, y2019) = simulate_both_eras(opts.scale, opts.seed);
    let (new11, all11) = submission::task_rate_ccdfs(&y2011, scale);
    print_ccdf_summary("2011 new tasks", &new11);
    print_ccdf_summary("2011 all tasks", &all11);
    // Pool 2019 cells by averaging their hourly series.
    let mut churn19 = 0.0;
    for o in &y2019 {
        let (new, all) = submission::task_rate_ccdfs(o, scale);
        print_ccdf_summary(&format!("2019 cell {} new", o.metrics.cell_name), &new);
        print_ccdf_summary(&format!("2019 cell {} all", o.metrics.cell_name), &all);
        churn19 += submission::churn_ratio(o) / y2019.len() as f64;
    }
    println!(
        "\nreschedule:new ratio — 2011: {:.2} (paper 0.66), 2019: {:.2} (paper 2.26)",
        submission::churn_ratio(&y2011),
        churn19
    );
}
