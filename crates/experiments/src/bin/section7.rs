//! §7.3: M/G/1 queueing implications of the measured C².

use borg_core::analyses::{consumption, queueing};
use borg_experiments::{banner, parse_opts};
use borg_workload::integral::IntegralModel;

fn main() {
    let opts = parse_opts();
    banner(
        "Section 7.3",
        "Pollaczek–Khinchine delays for the measured C²",
        &opts,
    );
    let (cpu19, _) = consumption::era_samples(&IntegralModel::model_2019(), 1_000_000, opts.seed);
    let rows = queueing::queueing_rows(&cpu19, &[0.1, 0.3, 0.5, 0.7, 0.9]).expect("valid loads");
    println!(
        "{:>5} {:>16} {:>16} {:>12}",
        "rho", "delay (full)", "delay (mice)", "benefit"
    );
    for r in rows {
        println!(
            "{:>5.1} {:>16.1} {:>16.4} {:>12.0}x",
            r.rho, r.delay_full, r.delay_mice, r.benefit
        );
    }
    println!(
        "\ndelays in units of mean service time; 'mice' = bottom 99% of jobs with hogs isolated"
    );
}
