//! Figure 13: correlation between compute and memory consumption.

use borg_core::analyses::correlation;
use borg_experiments::{banner, parse_opts};

fn main() {
    let opts = parse_opts();
    banner("Figure 13", "median NMU-hours per 1-NCU-hour bucket", &opts);
    let f = correlation::figure13(1_000_000, opts.seed).expect("figure 13 computes");
    println!("bucket(NCU-h)  median NMU-h  jobs");
    for b in f.buckets.iter().take(30) {
        println!(
            "{:>8.0}-{:<6.0} {:>12.4} {:>6}",
            b.x_lo, b.x_hi, b.median_y, b.count
        );
    }
    if f.buckets.len() > 30 {
        println!("... ({} buckets total)", f.buckets.len());
    }
    println!(
        "\nPearson correlation of bucketed medians: {:.3} (paper: 0.97)",
        f.pearson
    );
}
