#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate implements the benchmark API surface the `borg-bench` suite
//! uses: [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`bench_with_input`/`finish`, [`BenchmarkId`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is simpler than real criterion but honest: each benchmark
//! is warmed up, then timed over `sample_size` samples whose per-sample
//! iteration count targets a fixed wall-clock budget; the report prints
//! min / median / max per-iteration times, which is enough for the
//! before/after comparisons recorded in CHANGES.md.
//!
//! Setting the `CRITERION_SMOKE` environment variable (any value)
//! replaces the timing budgets with minimal ones, so every benchmark
//! executes a couple of iterations and exits: a CI smoke pass that
//! proves the benches still build and run, driven by
//! `scripts/check.sh --bench`. Numbers printed in smoke mode are
//! meaningless.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, recording per-iteration durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if smoke_mode() {
            // No warm-up, one iteration per sample: just prove it runs.
            for _ in 0..self.sample_size {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            return;
        }
        // Warm-up: also estimates a single iteration's cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Pick an iteration count per sample so all samples together fit
        // roughly in the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / est_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().div_f64(iters_per_sample as f64));
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// True when the run only needs to prove the benches execute.
fn smoke_mode() -> bool {
    std::env::var_os("CRITERION_SMOKE").is_some()
}

fn run_one(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (sample_size, warm_up_time, measurement_time) = if smoke_mode() {
        (2, Duration::from_millis(1), Duration::from_millis(2))
    } else {
        (sample_size, warm_up_time, measurement_time)
    };
    let mut samples = Vec::with_capacity(sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(4),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500.00 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
