//! Hand-rolled JSON rendering for `--format json` / `--json FILE`.
//!
//! The linter is dependency-free by design, so this is a minimal
//! writer, not a JSON library: it emits exactly the report shape CI
//! archives and budgets against. Strings are escaped per RFC 8259
//! (quote, backslash, control characters); numbers are emitted with
//! enough precision for millisecond timings.
//!
//! Schema (`version` bumps on breaking change):
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [{"file", "line", "rule", "slug", "message"}],
//!   "unused_suppressions": [{"file", "line", "marker", "known"}],
//!   "unused_baseline": ["path:line:RULE"],
//!   "timings_ms": {"lex": 1.2, "parse": 0.8, "graph": 0.3, "D1": …},
//!   "total_ms": 12.5,
//!   "files": 93,
//!   "fns": 812,
//!   "contract_reachable_fns": 120,
//!   "pool_reachable_fns": 95,
//!   "contract_files": ["crates/sim/src/cell.rs", …]
//! }
//! ```

use crate::WorkspaceReport;

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(ms: f64) -> String {
    // Three decimals is plenty for ms timings and avoids 17-digit noise.
    format!("{ms:.3}")
}

/// Renders the full report as a single JSON document.
pub fn render_report(r: &WorkspaceReport) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in r.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"slug\": \"{}\", \
             \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            d.rule.id(),
            d.rule.slug(),
            escape(&d.message)
        ));
    }
    out.push_str(if r.diags.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"unused_suppressions\": [");
    for (i, u) in r.unused.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"marker\": \"{}\", \"known\": {}}}",
            escape(&u.file),
            u.line,
            escape(&u.marker),
            u.known
        ));
    }
    out.push_str(if r.unused.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"unused_baseline\": [");
    for (i, e) in r.unused_baseline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(e)));
    }
    out.push_str("],\n");

    out.push_str("  \"timings_ms\": {");
    for (i, (k, ms)) in r.timings.entries().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", escape(k), num(*ms)));
    }
    out.push_str("},\n");

    let contract_fns = r.reach.contract.iter().filter(|&&b| b).count();
    let pool_fns = r.reach.pool.iter().filter(|&&b| b).count();
    out.push_str(&format!("  \"total_ms\": {},\n", num(r.total_ms)));
    out.push_str(&format!("  \"files\": {},\n", r.n_files));
    out.push_str(&format!("  \"fns\": {},\n", r.graph.nodes.len()));
    out.push_str(&format!(
        "  \"contract_reachable_fns\": {contract_fns},\n  \"pool_reachable_fns\": {pool_fns},\n"
    ));

    out.push_str("  \"contract_files\": [");
    for (i, f) in r.contract_files().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(f)));
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_sources, Allowlist};

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_renders_valid_shape() {
        let src = "pub fn f(xs: &[u64]) -> u64 { *xs.first().unwrap() }\n";
        let report = lint_sources(
            &[("crates/sim/src/x.rs".to_string(), src.to_string())],
            &Allowlist::empty(),
        );
        let json = render_report(&report);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"rule\": \"S2\""));
        assert!(json.contains("\"total_ms\""));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
