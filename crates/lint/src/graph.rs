//! The workspace call graph and the contract-reachability engine.
//!
//! Built from the per-file items recovered by [`crate::parse`], this
//! module replaces the old hand-maintained `BIT_IDENTITY_FILES` list
//! with *contract entry points* ([`CONTRACT_ROOTS`]): named functions
//! whose transitive callees are computed and policed automatically. A
//! helper module called from `shard.rs` is inside the bit-identity
//! contract the day it is created — no list to forget to update.
//!
//! # Name resolution (best-effort, by construction conservative)
//!
//! Resolution runs on names, not types, and errs toward *more* edges —
//! a false edge only widens the policed set, a missing edge would
//! silently narrow it:
//!
//! * **Bare calls** `name(…)` resolve to every free function named
//!   `name` in the caller's crate, then (if none) in its blessed
//!   callee crates.
//! * **Qualified calls** `Head::name(…)` try `Head::name` as an
//!   impl/trait-qualified item, then fall back to a free `name`
//!   (module-path heads like `shard::combine_winners`), caller crate
//!   first, blessed crates after.
//! * **Method calls** `.name(…)` resolve to *every* function named
//!   `name` in the caller's crate and its blessed crates (union): on
//!   tokens there is no receiver type, so all candidates are policed.
//! * **Cross-crate edges** exist only along [`BLESSED_CROSS_CRATE`].
//!   Everything else (vendored shims, `std`) is a resolution boundary.
//! * Test items never enter the graph — an in-test naive reference
//!   model defining `fn pop` must not police the library's `pop`.
//!
//! Unresolvable calls (closure parameters, fn pointers, macro bodies)
//! produce no edge; the `WorkerPool` dispatch boundary — the one place
//! a fn pointer launders code onto other threads — is recovered
//! explicitly: every `WorkerPool::new(workers, worker_fn …)` call site
//! marks `worker_fn` as a **pool root**, and the C2 rule polices its
//! transitive callees (see [`crate::rules`]).

use crate::parse::{Callee, ParsedFile};
use crate::FileClass;
use std::collections::HashMap;

/// A contract entry point: `file` anchors the root (so the spec rots
/// loudly — if the file still exists but the function is gone, G1
/// fires), `qual` names the function as the parser qualifies it.
#[derive(Debug, Clone, Copy)]
pub struct ContractRoot {
    pub file: &'static str,
    pub qual: &'static str,
}

/// The bit-identity contract entry points. Everything transitively
/// callable from these functions is policed by the contract rules
/// (C2/C3, and D1/D3/S2 through the deterministic-crate scoping).
/// DESIGN.md §15 documents how to bless a new root.
pub const CONTRACT_ROOTS: &[ContractRoot] = &[
    // The whole cell simulation: placement, dispatch, usage accounting.
    ContractRoot {
        file: "crates/sim/src/cell.rs",
        qual: "CellSim::run_cell",
    },
    // Multi-cell fan-out over the worker pool.
    ContractRoot {
        file: "crates/sim/src/multi.rs",
        qual: "run_cells_parallel",
    },
    // Sharded placement probes (also reachable from run_cell; explicit
    // so the shard layer stays policed even if the cell rewires).
    ContractRoot {
        file: "crates/sim/src/shard.rs",
        qual: "ShardedPlacement::best_fit",
    },
    ContractRoot {
        file: "crates/sim/src/shard.rs",
        qual: "ShardedPlacement::first_preemptible",
    },
    // The parallel==sequential query contracts.
    ContractRoot {
        file: "crates/query/src/parallel.rs",
        qual: "map_blocks",
    },
    ContractRoot {
        file: "crates/query/src/groupby.rs",
        qual: "group_by",
    },
    // The serve state machine's decision surface: every admission /
    // retry / expiry decision and the replayable event log flow from
    // these two entry points.
    ContractRoot {
        file: "crates/serve/src/service.rs",
        qual: "Service::submit",
    },
    ContractRoot {
        file: "crates/serve/src/service.rs",
        qual: "Service::on_attempt_done",
    },
    // The virtual-time overload driver (byte-replayable end to end).
    ContractRoot {
        file: "crates/serve/src/sim.rs",
        qual: "ServeSim::run",
    },
];

/// Crate pairs along which calls resolve: `(caller, callees)`. The sim
/// consumes workload generation and trace-schema math inside its
/// determinism contract; everything else is a boundary.
pub const BLESSED_CROSS_CRATE: &[(&str, &[&str])] = &[
    ("sim", &["workload", "trace"]),
    ("workload", &["trace"]),
    ("borg2019", &["sim", "query", "trace"]),
    // The query service executes plans through the engine and loads
    // epochs through core; its event-log determinism contract leans on
    // both, so calls resolve across and stay policed.
    ("serve", &["query", "core", "trace", "telemetry"]),
];

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the file table.
    pub file: usize,
    pub qual: String,
    pub name: String,
    pub trait_qual: Option<String>,
    pub line: u32,
    pub end_line: u32,
}

/// Why a node is policed, for `--explain` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachKind {
    /// Transitively callable from a [`ContractRoot`].
    Contract,
    /// Transitively callable from a `WorkerPool` worker function.
    Pool,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Repo-relative paths, in scan order.
    pub files: Vec<String>,
    /// Crate of each file (from [`FileClass`]).
    crates: Vec<String>,
    pub nodes: Vec<Node>,
    /// Sorted, deduped callee-node indices per node.
    pub edges: Vec<Vec<usize>>,
    /// Contract roots that resolved, as node indices (with root-table
    /// index for provenance).
    pub roots: Vec<(usize, usize)>,
    /// Roots whose anchor file is present but whose function is not:
    /// `(file, qual)` — the linter turns these into G1 findings.
    pub missing_roots: Vec<(String, &'static str)>,
    /// Pool worker functions, as `(call-site file, line, node)`.
    pub pool_roots: Vec<(usize, u32, usize)>,
    /// `WorkerPool::new` call sites whose worker argument did not
    /// resolve to a named function: `(file, line)` — C2 findings.
    pub opaque_pool_workers: Vec<(usize, u32)>,
}

/// Reachability over the graph: per node, whether the contract and/or
/// pool closures cover it, plus BFS parents for `--explain` chains.
pub struct Reachability {
    pub contract: Vec<bool>,
    pub pool: Vec<bool>,
    /// BFS parent (node index) per node, per closure; roots have none.
    pub contract_parent: Vec<Option<usize>>,
    pub pool_parent: Vec<Option<usize>>,
}

/// Line ranges a file is policed on, handed to the rule passes.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// `(start_line, end_line)` of contract-reachable fns.
    pub contract: Vec<(u32, u32)>,
    /// `(start_line, end_line)` of pool-dispatched fns (transitive).
    pub pool: Vec<(u32, u32)>,
    /// `(start_line, end_line)` of pool *worker* fns themselves (the
    /// direct dispatch bodies; C2's indexing arm applies only here).
    pub pool_direct: Vec<(u32, u32)>,
    /// `WorkerPool::new` call sites with unresolvable worker fns.
    pub opaque_pool_workers: Vec<u32>,
}

impl FileScope {
    /// True when `line` falls in a contract-reachable fn.
    pub fn in_contract(&self, line: u32) -> bool {
        self.contract.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// True when `line` falls in pool-dispatched code.
    pub fn in_pool(&self, line: u32) -> bool {
        self.pool.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// True when `line` falls in a pool worker fn's own body.
    pub fn in_pool_direct(&self, line: u32) -> bool {
        self.pool_direct
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }
}

impl CallGraph {
    /// Builds and resolves the graph over parsed files. `files` holds
    /// `(rel_path, class, parsed)` triples in scan order.
    pub fn build(files: &[(String, FileClass, ParsedFile)]) -> CallGraph {
        let mut g = CallGraph {
            files: files.iter().map(|(rel, _, _)| rel.clone()).collect(),
            crates: files.iter().map(|(_, fc, _)| fc.krate.clone()).collect(),
            nodes: Vec::new(),
            edges: Vec::new(),
            roots: Vec::new(),
            missing_roots: Vec::new(),
            pool_roots: Vec::new(),
            opaque_pool_workers: Vec::new(),
        };
        // Nodes: every non-test fn item, in file order.
        for (fi, (_, _, pf)) in files.iter().enumerate() {
            for f in &pf.fns {
                if f.is_test {
                    continue;
                }
                g.nodes.push(Node {
                    file: fi,
                    qual: f.qual.clone(),
                    name: f.name.clone(),
                    trait_qual: f.trait_qual.clone(),
                    line: f.line,
                    end_line: f.end_line,
                });
            }
        }

        // Per-crate name indices.
        #[derive(Default)]
        struct CrateIndex {
            by_qual: HashMap<String, Vec<usize>>,
            by_bare: HashMap<String, Vec<usize>>,
            by_method: HashMap<String, Vec<usize>>,
        }
        let mut index: HashMap<&str, CrateIndex> = HashMap::new();
        for (ni, n) in g.nodes.iter().enumerate() {
            let ci = index.entry(g.crates[n.file].as_str()).or_default();
            ci.by_qual.entry(n.qual.clone()).or_default().push(ni);
            if let Some(tq) = &n.trait_qual {
                ci.by_qual.entry(tq.clone()).or_default().push(ni);
            }
            if n.qual == n.name {
                ci.by_bare.entry(n.name.clone()).or_default().push(ni);
            }
            ci.by_method.entry(n.name.clone()).or_default().push(ni);
        }
        let blessed = |krate: &str| -> &[&str] {
            BLESSED_CROSS_CRATE
                .iter()
                .find(|(c, _)| *c == krate)
                .map(|(_, callees)| *callees)
                .unwrap_or(&[])
        };
        // Lookup with caller-crate-first, blessed-crates-fallback order;
        // `union` adds blessed hits even when the caller crate matched.
        let lookup =
            |krate: &str, pick: &dyn Fn(&CrateIndex) -> Option<Vec<usize>>, union: bool| {
                let mut out: Vec<usize> = Vec::new();
                if let Some(hits) = index.get(krate).and_then(pick) {
                    out.extend(hits);
                }
                if out.is_empty() || union {
                    for callee in blessed(krate) {
                        if let Some(hits) = index.get(callee).and_then(pick) {
                            out.extend(hits);
                        }
                    }
                }
                out
            };

        // Edges + pool-root discovery. Node order matches fn iteration
        // order per file, so walk both in lockstep.
        for (fi, (_, fc, pf)) in files.iter().enumerate() {
            let krate = fc.krate.as_str();
            for f in &pf.fns {
                if f.is_test {
                    continue;
                }
                let mut targets: Vec<usize> = Vec::new();
                for (c, call) in f.calls.iter().enumerate() {
                    match &call.callee {
                        Callee::Bare(name) | Callee::FnRef(name) => {
                            let name = name.clone();
                            targets.extend(lookup(
                                krate,
                                &move |ci: &CrateIndex| ci.by_bare.get(&name).cloned(),
                                false,
                            ));
                        }
                        Callee::Qualified(head, name) => {
                            // `WorkerPool::new(workers, worker_fn as fn…)`
                            // (and the serve crate's streaming
                            // `ServePool::new`): the worker fn (the next
                            // fn-pointer cast in token order) is a pool
                            // root.
                            if (head == "WorkerPool" || head == "ServePool") && name == "new" {
                                let worker =
                                    f.calls[c + 1..].iter().find_map(|w| match &w.callee {
                                        Callee::FnRef(n) => Some(n.clone()),
                                        _ => None,
                                    });
                                match worker {
                                    Some(w) => {
                                        let hits = lookup(
                                            krate,
                                            &move |ci: &CrateIndex| ci.by_bare.get(&w).cloned(),
                                            false,
                                        );
                                        if hits.is_empty() {
                                            g.opaque_pool_workers.push((fi, call.line));
                                        }
                                        for h in hits {
                                            g.pool_roots.push((fi, call.line, h));
                                        }
                                    }
                                    None => g.opaque_pool_workers.push((fi, call.line)),
                                }
                            }
                            let key = format!("{head}::{name}");
                            let q = key.clone();
                            let mut hits = lookup(
                                krate,
                                &move |ci: &CrateIndex| ci.by_qual.get(&q).cloned(),
                                false,
                            );
                            if hits.is_empty() {
                                // Module-path head: fall back to a free fn.
                                let b = name.clone();
                                hits = lookup(
                                    krate,
                                    &move |ci: &CrateIndex| ci.by_bare.get(&b).cloned(),
                                    false,
                                );
                            }
                            targets.extend(hits);
                        }
                        Callee::Method(name) => {
                            let m = name.clone();
                            targets.extend(lookup(
                                krate,
                                &move |ci: &CrateIndex| ci.by_method.get(&m).cloned(),
                                true,
                            ));
                        }
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                g.edges.push(targets);
            }
        }

        // Resolve contract roots against the node table.
        let file_present = |file: &str| g.files.iter().any(|f| f == file);
        for (ri, root) in CONTRACT_ROOTS.iter().enumerate() {
            let hits: Vec<usize> = g
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| g.files[n.file] == root.file && n.qual == root.qual)
                .map(|(ni, _)| ni)
                .collect();
            if hits.is_empty() {
                if file_present(root.file) {
                    g.missing_roots.push((root.file.to_string(), root.qual));
                }
            } else {
                for h in hits {
                    g.roots.push((ri, h));
                }
            }
        }
        g
    }

    /// BFS closures from the contract and pool roots.
    pub fn reach(&self) -> Reachability {
        let bfs = |seeds: &[usize]| -> (Vec<bool>, Vec<Option<usize>>) {
            let mut seen = vec![false; self.nodes.len()];
            let mut parent = vec![None; self.nodes.len()];
            let mut queue: Vec<usize> = Vec::new();
            for &s in seeds {
                if !seen[s] {
                    seen[s] = true;
                    queue.push(s);
                }
            }
            let mut head = 0;
            while head < queue.len() {
                let n = queue[head];
                head += 1;
                for &m in &self.edges[n] {
                    if !seen[m] {
                        seen[m] = true;
                        parent[m] = Some(n);
                        queue.push(m);
                    }
                }
            }
            (seen, parent)
        };
        let contract_seeds: Vec<usize> = self.roots.iter().map(|&(_, n)| n).collect();
        let pool_seeds: Vec<usize> = self.pool_roots.iter().map(|&(_, _, n)| n).collect();
        let (contract, contract_parent) = bfs(&contract_seeds);
        let (pool, pool_parent) = bfs(&pool_seeds);
        Reachability {
            contract,
            pool,
            contract_parent,
            pool_parent,
        }
    }

    /// Per-file policed line ranges, in file order.
    pub fn file_scopes(&self, reach: &Reachability) -> Vec<FileScope> {
        let mut scopes: Vec<FileScope> = (0..self.files.len())
            .map(|_| FileScope::default())
            .collect();
        for (ni, n) in self.nodes.iter().enumerate() {
            let span = (n.line, n.end_line);
            if reach.contract[ni] {
                scopes[n.file].contract.push(span);
            }
            if reach.pool[ni] {
                scopes[n.file].pool.push(span);
            }
        }
        for &(_, _, ni) in &self.pool_roots {
            let n = &self.nodes[ni];
            scopes[n.file].pool_direct.push((n.line, n.end_line));
        }
        for &(fi, line) in &self.opaque_pool_workers {
            scopes[fi].opaque_pool_workers.push(line);
        }
        scopes
    }

    /// The BFS chain `root → … → node`, for `--explain`.
    pub fn chain(&self, reach: &Reachability, kind: ReachKind, node: usize) -> Option<Vec<usize>> {
        let (seen, parent) = match kind {
            ReachKind::Contract => (&reach.contract, &reach.contract_parent),
            ReachKind::Pool => (&reach.pool, &reach.pool_parent),
        };
        if !seen[node] {
            return None;
        }
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        Some(chain)
    }

    /// Nodes whose qualified or bare name matches `needle`.
    pub fn find(&self, needle: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.qual == needle || n.name == needle)
            .map(|(ni, _)| ni)
            .collect()
    }

    /// One line per reachable fn, sorted — the `--dump-graph` artifact
    /// reviews diff against.
    pub fn dump(&self, reach: &Reachability) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (ni, n) in self.nodes.iter().enumerate() {
            let c = reach.contract[ni];
            let p = reach.pool[ni];
            if !c && !p {
                continue;
            }
            let tag = match (c, p) {
                (true, true) => "contract+pool",
                (true, false) => "contract",
                _ => "pool",
            };
            lines.push(format!(
                "{}:{}\t{}\t{}",
                self.files[n.file], n.line, n.qual, tag
            ));
        }
        lines.sort();
        lines.join("\n")
    }

    /// Render of a node for human output.
    pub fn describe(&self, node: usize) -> String {
        let n = &self.nodes[node];
        format!("{} ({}:{})", n.qual, self.files[n.file], n.line)
    }
}
