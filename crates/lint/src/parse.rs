//! A lightweight item parser on top of [`crate::lexer`]: recovers
//! `fn` / `impl` / `trait` boundaries and call sites per file.
//!
//! This is the structural layer the workspace call graph
//! ([`crate::graph`]) is built from. It is deliberately *not* a Rust
//! parser — it recognises exactly the shapes name resolution needs:
//!
//! * **Function items** with their qualified name (`Type::method` for
//!   `impl`/`trait` scopes, the bare name for free functions), the
//!   token span and line span of their body, and whether they sit in a
//!   `#[cfg(test)]` region (test items are excluded from the graph so
//!   naive in-test reference models can never police library code).
//! * **Call sites** inside each body, in three shapes: `name(…)`
//!   (bare), `Head::name(…)` (qualified — `Self::` is rewritten to the
//!   enclosing impl type), and `.name(…)` (method). Calls inside
//!   closures belong to the enclosing function; nested `fn` items get
//!   their own node and their tokens are excluded from the parent.
//! * **Macro invocations are not calls**: `foo!(…)` is skipped (the
//!   token rules handle `panic!` and friends directly).
//!
//! Raw identifiers (`r#fn` is a *name*, never the keyword) and the
//! `->` / `>` distinction inside nested generics (the lexer emits every
//! generic closer as its own `>` token — see [`crate::lexer`]) are the
//! two lexer-level properties this parser depends on.

use crate::lexer::{Tok, TokKind};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(…)` — a free-function call (or tuple-struct constructor;
    /// unresolvable names simply produce no edge).
    Bare(String),
    /// `Head::name(…)` — the last two path segments; `Self::name` has
    /// already been rewritten to the enclosing impl type.
    Qualified(String, String),
    /// `.name(…)` — a method call, resolvable only by name.
    Method(String),
    /// `name as fn(…) -> …` — a function passed by pointer. The graph
    /// treats it as a call edge (the pointer may be invoked anywhere),
    /// and `WorkerPool::new` sites use it to recover the worker fn.
    FnRef(String),
}

/// A call site: what is called, and where from.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: Callee,
    pub line: u32,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name, `r#` sigil stripped.
    pub name: String,
    /// `Type::name` inside an `impl`/`trait` scope, else the bare name.
    pub qual: String,
    /// Trait-qualified alias (`Trait::name`) for `impl Trait for Type`
    /// methods, so `<T as Trait>::name`-style call sites resolve too.
    pub trait_qual: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace.
    pub end_line: u32,
    /// Token index range of the body (inclusive of both braces).
    pub body: (usize, usize),
    /// True when the item sits in a `#[test]`/`#[cfg(test)]` region.
    pub is_test: bool,
    /// Call sites in the body, excluding nested `fn` items' bodies.
    pub calls: Vec<Call>,
}

/// Every function item of one file, in source order.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
}

/// Keywords that look like `name(` call sites but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "move", "fn", "in",
    "let", "else", "as", "where", "unsafe", "async", "await", "dyn", "impl", "ref", "mut", "pub",
    "use", "mod", "const", "static", "type", "trait", "enum", "struct", "union", "extern",
];

/// Strips the raw-identifier sigil: `r#type` → `type`.
fn strip_raw(name: &str) -> &str {
    name.strip_prefix("r#").unwrap_or(name)
}

/// True for the *keyword* `fn` (a raw identifier `r#fn` is a name).
fn is_fn_keyword(t: &Tok) -> bool {
    t.kind == TokKind::Ident && t.text == "fn"
}

/// Parses one file's (comment-free) token stream into function items.
/// `in_test` is the per-token test-region mask from
/// [`crate::rules::test_regions`].
pub fn parse_file(toks: &[Tok], in_test: &[bool]) -> ParsedFile {
    let brace_match = match_braces(toks);
    let mut fns = Vec::new();
    collect_fns(toks, in_test, &brace_match, 0, toks.len(), None, &mut fns);
    // Attribute call sites: each fn owns its body minus nested fn
    // bodies (items are in source order, so children follow parents).
    let spans: Vec<(usize, usize)> = fns.iter().map(|f| f.body).collect();
    for f in fns.iter_mut() {
        let children: Vec<(usize, usize)> = spans
            .iter()
            .copied()
            .filter(|&(s, e)| s > f.body.0 && e <= f.body.1 && (s, e) != f.body)
            .collect();
        f.calls = extract_calls(toks, f.body, &children, f.qual.as_str());
    }
    ParsedFile { fns }
}

/// Computes, for every `{` token, the index of its matching `}`.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    out
}

/// Walks `[start, end)` collecting `fn` items; `scope` is the enclosing
/// impl/trait type, applied to method quals. Recurses into `impl`,
/// `trait`, `mod`, and `fn` bodies.
fn collect_fns(
    toks: &[Tok],
    in_test: &[bool],
    brace_match: &[Option<usize>],
    start: usize,
    end: usize,
    scope: Option<(&str, Option<&str>)>,
    out: &mut Vec<FnItem>,
) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                // `impl [<…>] Type { … }` or `impl [<…>] Trait for Type { … }`.
                if let Some((type_name, trait_name, open)) = parse_impl_header(toks, i, end) {
                    if let Some(close) = brace_match[open] {
                        collect_fns(
                            toks,
                            in_test,
                            brace_match,
                            open + 1,
                            close.min(end),
                            Some((type_name, trait_name)),
                            out,
                        );
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "trait" => {
                // `trait Name [<…>] [: bounds] { … }` — default method
                // bodies resolve under `Name::method`.
                let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident);
                if let (Some(name), Some(open)) = (name, find_body_open(toks, i + 1, end)) {
                    if let Some(close) = brace_match[open] {
                        let qual = strip_raw(&name.text);
                        collect_fns(
                            toks,
                            in_test,
                            brace_match,
                            open + 1,
                            close.min(end),
                            Some((qual, None)),
                            out,
                        );
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "mod" => {
                // Modules do not change quals; just descend in the same
                // scope (inline `mod { … }` only — `mod name;` has no body).
                if let Some(open) = find_body_open(toks, i + 1, end) {
                    if toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Ident && open == i + 2)
                    {
                        if let Some(close) = brace_match[open] {
                            collect_fns(
                                toks,
                                in_test,
                                brace_match,
                                open + 1,
                                close.min(end),
                                scope,
                                out,
                            );
                            i = close + 1;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            "fn" if is_fn_keyword(t) => {
                // `fn` in type position (`as fn(J) -> R`, `Fn(..)`) has
                // no following identifier.
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                match find_body_open(toks, i + 2, end) {
                    Some(open) => {
                        if let Some(close) = brace_match[open] {
                            let name = strip_raw(&name_tok.text).to_string();
                            let qual = match scope {
                                Some((ty, _)) => format!("{ty}::{name}"),
                                None => name.clone(),
                            };
                            let trait_qual = scope
                                .and_then(|(_, tr)| tr)
                                .map(|tr| format!("{tr}::{name}"));
                            out.push(FnItem {
                                name,
                                qual,
                                trait_qual,
                                line: t.line,
                                end_line: toks[close].line,
                                body: (open, close),
                                is_test: in_test.get(i).copied().unwrap_or(false),
                                calls: Vec::new(),
                            });
                            // Descend for nested `fn` items (they carry
                            // the same impl scope — good enough).
                            collect_fns(
                                toks,
                                in_test,
                                brace_match,
                                open + 1,
                                close.min(end),
                                scope,
                                out,
                            );
                            i = close + 1;
                            continue;
                        }
                        i = open + 1;
                    }
                    // Bodiless decl (`fn f(…);` in a trait): skip past
                    // the signature.
                    None => i += 2,
                }
            }
            _ => i += 1,
        }
    }
}

/// From a position inside an item header, finds the token index of the
/// body-opening `{` at zero paren/bracket/angle depth, or `None` if a
/// `;` ends the item first. This is where the `->`-vs-`>` distinction
/// matters: `->` is a single token, so `Fn(u32) -> Vec<u32>` bounds
/// never unbalance the angle depth.
fn find_body_open(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut angle = 0isize;
    let mut paren = 0isize;
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 && angle <= 0 => return Some(i),
                ";" if paren == 0 && angle <= 0 => return None,
                // `=` ends associated-type / const items (`type X = …;`)
                // but also appears in default const generics; the `;`
                // arm above is the real terminator either way.
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses an `impl` header starting at `at` (the `impl` token): returns
/// `(type_name, trait_name, body_open_index)`. The type name is the
/// last path segment before the body/`where`; for `impl Trait for Type`
/// the trait's last segment is returned separately.
fn parse_impl_header(toks: &[Tok], at: usize, end: usize) -> Option<(&str, Option<&str>, usize)> {
    let open = find_body_open(toks, at + 1, end)?;
    // Collect top-level idents of the header, noting a `for` split.
    let mut angle = 0isize;
    let mut paren = 0isize;
    let mut before_for: Option<&str> = None;
    let mut current: Option<&str> = None;
    let mut i = at + 1;
    while i < open {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                _ => {}
            },
            TokKind::Ident if angle == 0 && paren == 0 => match t.text.as_str() {
                "for" => {
                    before_for = current.take();
                }
                "where" => break,
                _ => current = Some(strip_raw(&t.text)),
            },
            _ => {}
        }
        i += 1;
    }
    let type_name = current?;
    Some((type_name, before_for, open))
}

/// Extracts call sites from `span` (a body's token range), skipping the
/// `children` sub-spans (nested fn bodies). `self_type` rewrites
/// `Self::name` calls.
fn extract_calls(
    toks: &[Tok],
    span: (usize, usize),
    children: &[(usize, usize)],
    self_qual: &str,
) -> Vec<Call> {
    let self_type = self_qual.split("::").next().unwrap_or(self_qual);
    let mut out = Vec::new();
    let mut i = span.0;
    while i <= span.1 {
        if let Some(&(_, child_end)) = children.iter().find(|&&(s, e)| s <= i && i <= e) {
            i = child_end + 1;
            continue;
        }
        let t = &toks[i];
        let next_is = |j: usize, s: &str| toks.get(j).is_some_and(|t| t.text == s);
        // A raw identifier is always a name; only plain spellings of
        // keywords disqualify a candidate.
        let is_name =
            |t: &Tok| t.text.starts_with("r#") || !NON_CALL_KEYWORDS.contains(&t.text.as_str());
        // `name as fn(…)` — a fn-pointer cast of a named function.
        if t.kind == TokKind::Ident && is_name(t) && next_is(i + 1, "as") && next_is(i + 2, "fn") {
            out.push(Call {
                callee: Callee::FnRef(strip_raw(&t.text).to_string()),
                line: t.line,
            });
            i += 3;
            continue;
        }
        if t.kind == TokKind::Ident && next_is(i + 1, "(") {
            let name = strip_raw(&t.text);
            if is_name(t) {
                let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                let callee = match prev {
                    Some(".") => Some(Callee::Method(name.to_string())),
                    Some("::") => {
                        // Walk back one segment for the head; `Self`
                        // resolves to the enclosing impl type. A
                        // non-ident head (turbofish `>::new`) yields no
                        // edge — documented resolution limit.
                        i.checked_sub(2)
                            .map(|h| &toks[h])
                            .filter(|h| h.kind == TokKind::Ident)
                            .map(|h| {
                                let head = strip_raw(&h.text);
                                let head = if head == "Self" { self_type } else { head };
                                Callee::Qualified(head.to_string(), name.to_string())
                            })
                    }
                    _ => Some(Callee::Bare(name.to_string())),
                };
                if let Some(callee) = callee {
                    out.push(Call {
                        callee,
                        line: t.line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn parse(src: &str) -> ParsedFile {
        let toks: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let mask = test_regions(&toks);
        parse_file(&toks, &mask)
    }

    fn quals(pf: &ParsedFile) -> Vec<&str> {
        pf.fns.iter().map(|f| f.qual.as_str()).collect()
    }

    #[test]
    fn free_fns_and_impl_methods() {
        let pf = parse(
            "pub fn top() { helper(); }\n\
             fn helper() {}\n\
             impl Widget {\n    pub fn step(&mut self) { self.tick(); Other::go(); }\n}\n",
        );
        assert_eq!(quals(&pf), vec!["top", "helper", "Widget::step"]);
        let step = &pf.fns[2];
        assert!(step
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("tick".into())));
        assert!(step
            .calls
            .iter()
            .any(|c| c.callee == Callee::Qualified("Other".into(), "go".into())));
    }

    #[test]
    fn trait_impls_carry_both_quals() {
        let pf = parse(
            "impl Runner for Widget {\n    fn run(&self) -> Vec<Vec<u32>> { Vec::new() }\n}\n",
        );
        assert_eq!(quals(&pf), vec!["Widget::run"]);
        assert_eq!(pf.fns[0].trait_qual.as_deref(), Some("Runner::run"));
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        // The `->` inside the `Fn` bound and the nested `Vec<Vec<…>>`
        // closers are exactly the satellite's lexer gaps.
        let pf = parse(
            "pub fn apply<F: Fn(u32) -> Vec<u32>>(f: F) -> Vec<Vec<u32>> {\n    inner(f)\n}\n\
             fn inner<F>(_f: F) -> Vec<Vec<u32>> { Vec::new() }\n",
        );
        assert_eq!(quals(&pf), vec!["apply", "inner"]);
        assert!(pf.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Bare("inner".into())));
    }

    #[test]
    fn raw_identifiers_are_names_not_keywords() {
        let pf = parse("pub fn r#type() { r#match(); }\nfn r#match() {}\n");
        assert_eq!(quals(&pf), vec!["type", "match"]);
        assert!(pf.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Bare("match".into())));
        // `as fn(J) -> R` casts must not register a phantom item —
        // they register a fn-pointer *reference* instead.
        let pf = parse("fn outer() { take(go as fn(u32) -> u32); }\nfn go(x: u32) -> u32 { x }\n");
        assert_eq!(quals(&pf), vec!["outer", "go"]);
        assert!(pf.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::FnRef("go".into())));
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let pf = parse("fn outer() { let f = |x: u32| helper(x); f(3); }\nfn helper(_x: u32) {}\n");
        assert!(pf.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Bare("helper".into())));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let pf = parse("fn outer() {\n    fn inner() { deep(); }\n    inner();\n}\nfn deep() {}\n");
        assert_eq!(quals(&pf), vec!["outer", "inner", "deep"]);
        let outer = &pf.fns[0];
        assert!(outer
            .calls
            .iter()
            .any(|c| c.callee == Callee::Bare("inner".into())));
        assert!(
            !outer
                .calls
                .iter()
                .any(|c| c.callee == Callee::Bare("deep".into())),
            "deep() belongs to inner, not outer"
        );
        assert!(pf.fns[1]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Bare("deep".into())));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let pf = parse("impl Widget {\n    fn a(&self) { Self::b(); }\n    fn b() {}\n}\n");
        assert!(pf.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Qualified("Widget".into(), "b".into())));
    }

    #[test]
    fn test_items_are_marked() {
        let pf = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn model() { lib(); }\n}\n");
        assert!(!pf.fns[0].is_test);
        assert!(pf.fns[1].is_test, "items under #[cfg(test)] are test items");
    }

    #[test]
    fn macros_are_not_calls() {
        let pf = parse("fn f() { println!(\"x\"); assert_eq!(1, 1); real(); }\nfn real() {}\n");
        let calls = &pf.fns[0].calls;
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].callee, Callee::Bare("real".into()));
    }

    #[test]
    fn mod_blocks_descend_without_qualifying() {
        let pf = parse("mod inner {\n    pub fn f() { g(); }\n    fn g() {}\n}\n");
        assert_eq!(quals(&pf), vec!["f", "g"]);
    }
}
