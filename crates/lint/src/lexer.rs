//! A token-level lexer for Rust source, sufficient for pattern-based
//! static analysis.
//!
//! This is not a full Rust lexer: it produces a flat token stream
//! (identifiers, literals, punctuation, comments) with line numbers,
//! which is what the rule engine in [`crate::rules`] pattern-matches
//! over. It does handle the parts that break naive text scanning:
//! string/char/raw-string literals (so `"Instant::now"` in a string is
//! not a violation), nested block comments, lifetimes vs. char
//! literals, and multi-char operators like `::` that the rules key on.

/// Token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`0`, `0.5`, `1_000u32`, `0xff`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators (`::`, `->`, `==`) are single
    /// tokens.
    Punct,
    /// Line or block comment, including doc comments; text keeps the
    /// comment markers.
    Comment,
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Multi-char operators, longest first so maximal munch works.
///
/// Deliberately absent: `<<`, `>>`, `<<=`, `>>=`. The item parser
/// ([`crate::parse`]) tracks generic-argument depth by counting `<` and
/// `>` tokens, and a glued `>>` would swallow both closers of
/// `Vec<Vec<u32>>` in one token (likewise `Foo<<T as B>::O>` opens two
/// depths at once). Shift expressions simply lex as two adjacent
/// angle-bracket tokens — no rule patterns on shifts, so nothing is
/// lost. `->` stays fused so a return arrow can never be miscounted as
/// a generic closer.
const OPS3: &[&str] = &["..=", "..."];
const OPS2: &[&str] = &[
    "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=",
];

/// Lexes `src` into a flat token stream. Unrecognised bytes become
/// single-char `Punct` tokens; the lexer never fails.
pub fn lex(src: &str) -> Vec<Tok> {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut out = Vec::with_capacity(n / 4);
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |out: &mut Vec<Tok>, kind: TokKind, text: String, line: u32| {
        out.push(Tok { kind, text, line });
    };

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i;
            while i < n && cs[i] != '\n' {
                i += 1;
            }
            push(
                &mut out,
                TokKind::Comment,
                cs[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let (start, start_line) = (i, line);
            let mut depth = 0usize;
            while i < n {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && i + 1 < n && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < n && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            push(
                &mut out,
                TokKind::Comment,
                cs[start..i].iter().collect(),
                start_line,
            );
            continue;
        }

        // Raw / byte / c strings and byte chars: r"", r#""#, b"", br"",
        // b'', c"". Fall through to plain identifier when not followed
        // by a quote.
        if c == 'r' || c == 'b' || c == 'c' {
            let mut j = i + 1;
            let mut is_raw = c == 'r';
            if c == 'b' && j < n && cs[j] == 'r' {
                is_raw = true;
                j += 1;
            }
            if is_raw && j < n && (cs[j] == '"' || cs[j] == '#') {
                // Raw string: count #s, then read to `"` + #s.
                let start = i;
                let start_line = line;
                let mut hashes = 0usize;
                while j < n && cs[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && cs[j] == '"' {
                    j += 1;
                    'raw: while j < n {
                        if cs[j] == '\n' {
                            line += 1;
                            j += 1;
                        } else if cs[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < n && cs[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                            j += 1;
                        } else {
                            j += 1;
                        }
                    }
                    push(
                        &mut out,
                        TokKind::Str,
                        cs[start..j].iter().collect(),
                        start_line,
                    );
                    i = j;
                    continue;
                }
                // `r#ident` raw identifier: fall through as ident below.
            }
            if (c == 'b' || c == 'c') && i + 1 < n && cs[i + 1] == '"' {
                let (start, start_line) = (i, line);
                i += 1; // at the quote; reuse plain-string scan below
                i = scan_plain_string(&cs, i, &mut line);
                push(
                    &mut out,
                    TokKind::Str,
                    cs[start..i].iter().collect(),
                    start_line,
                );
                continue;
            }
            if c == 'b' && i + 1 < n && cs[i + 1] == '\'' {
                let start = i;
                i = scan_char_literal(&cs, i + 1);
                push(&mut out, TokKind::Char, cs[start..i].iter().collect(), line);
                continue;
            }
        }

        // Identifiers and keywords (incl. raw identifiers `r#loop`).
        if c == '_' || c.is_alphabetic() {
            let start = i;
            if c == 'r' && i + 1 < n && cs[i + 1] == '#' {
                i += 2;
            }
            while i < n && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                i += 1;
            }
            push(
                &mut out,
                TokKind::Ident,
                cs[start..i].iter().collect(),
                line,
            );
            continue;
        }

        // Numbers: integer part, optional fraction (not `..`), optional
        // exponent, optional type suffix — glued into one token.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            if i + 1 < n && cs[i] == '.' && cs[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
            } else if i < n && cs[i] == '.' && (i + 1 >= n || cs[i + 1] != '.') {
                // Trailing-dot float like `1.` (but not `1..n`).
                i += 1;
            }
            if i < n && (cs[i] == '+' || cs[i] == '-') && cs[i - 1].eq_ignore_ascii_case(&'e') {
                i += 1;
                while i < n && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
            }
            push(&mut out, TokKind::Num, cs[start..i].iter().collect(), line);
            continue;
        }

        // Plain strings.
        if c == '"' {
            let (start, start_line) = (i, line);
            i = scan_plain_string(&cs, i, &mut line);
            push(
                &mut out,
                TokKind::Str,
                cs[start..i].iter().collect(),
                start_line,
            );
            continue;
        }

        // `'` starts either a char literal or a lifetime/label.
        if c == '\'' {
            if i + 1 < n && cs[i + 1] == '\\' {
                let start = i;
                i = scan_char_literal(&cs, i);
                push(&mut out, TokKind::Char, cs[start..i].iter().collect(), line);
                continue;
            }
            if i + 2 < n && cs[i + 2] == '\'' && cs[i + 1] != '\'' {
                push(&mut out, TokKind::Char, cs[i..i + 3].iter().collect(), line);
                i += 3;
                continue;
            }
            // Lifetime / label: `'` + ident chars.
            let start = i;
            i += 1;
            while i < n && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                i += 1;
            }
            push(
                &mut out,
                TokKind::Lifetime,
                cs[start..i].iter().collect(),
                line,
            );
            continue;
        }

        // Punctuation, maximal munch on the fixed operator tables.
        let rest3: String = cs[i..n.min(i + 3)].iter().collect();
        let rest2: String = cs[i..n.min(i + 2)].iter().collect();
        if OPS3.contains(&rest3.as_str()) {
            push(&mut out, TokKind::Punct, rest3, line);
            i += 3;
        } else if OPS2.contains(&rest2.as_str()) {
            push(&mut out, TokKind::Punct, rest2, line);
            i += 2;
        } else {
            push(&mut out, TokKind::Punct, c.to_string(), line);
            i += 1;
        }
    }
    out
}

/// Scans a `"…"` body starting at the opening quote; returns the index
/// one past the closing quote and bumps `line` across embedded
/// newlines.
fn scan_plain_string(cs: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = cs.len();
    i += 1; // opening quote
    while i < n {
        match cs[i] {
            '\\' => i = (i + 2).min(n),
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a char/byte-char literal starting at the opening `'`; returns
/// the index one past the closing `'`.
fn scan_char_literal(cs: &[char], mut i: usize) -> usize {
    let n = cs.len();
    i += 1; // opening quote
    while i < n {
        match cs[i] {
            '\\' => i = (i + 2).min(n),
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_paths() {
        let ts = kinds("SystemTime::now()");
        assert_eq!(ts[0], (TokKind::Ident, "SystemTime".into()));
        assert_eq!(ts[1], (TokKind::Punct, "::".into()));
        assert_eq!(ts[2], (TokKind::Ident, "now".into()));
    }

    #[test]
    fn strings_hide_their_content() {
        let ts = kinds(r#"let x = "Instant::now() // not a comment";"#);
        assert!(ts.iter().all(|(k, t)| *k != TokKind::Ident || t != "now"));
        assert!(ts.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ts = kinds(r##"let x = r#"a "quoted" b"#; y"##);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
        assert_eq!(ts.last().unwrap().1, "y");
    }

    #[test]
    fn lifetime_vs_char() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* outer /* inner */ still */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].0, TokKind::Comment);
        assert_eq!(ts[1].1, "x");
    }

    #[test]
    fn ranges_are_not_floats() {
        let ts = kinds("for i in 0..n {}");
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn raw_identifiers_stay_single_tokens() {
        // `r#fn` / `r#type` are ordinary identifiers that happen to
        // spell keywords; the item parser must see them as one Ident
        // (with the `r#` sigil preserved) and NOT as the `fn` keyword.
        let ts = kinds("fn r#fn() { r#type(); }");
        assert_eq!(ts[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ts[1], (TokKind::Ident, "r#fn".into()));
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
        // And a raw identifier is not mistaken for a raw string.
        let ts = kinds(r##"let r#match = r#"text"#;"##);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("text")));
    }

    #[test]
    fn nested_generic_closers_are_individual_tokens() {
        // `Vec<Vec<u32>>` must close two generic depths with two `>`
        // tokens — a glued `>>` shift token would break the item
        // parser's depth tracking.
        let ts = kinds("fn f() -> Vec<Vec<u32>> { g::<Option<Option<u8>>>() }");
        let closers = ts.iter().filter(|(k, t)| *k == TokKind::Punct && t == ">");
        assert_eq!(closers.count(), 5, "every `>` lexes on its own");
        assert!(ts.iter().all(|(_, t)| t != ">>"));
    }

    #[test]
    fn return_arrow_is_never_a_generic_closer() {
        // Inside nested generics, `->` (one token) must stay distinct
        // from `>` so `Fn() -> T` bounds don't unbalance the depth.
        let ts = kinds("fn apply<F: Fn(u32) -> Vec<u32>>(f: F) -> u8 { 0 }");
        let arrows = ts.iter().filter(|(_, t)| t == "->").count();
        let closers = ts.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(arrows, 2, "both return arrows lex as `->`");
        assert_eq!(closers, 2, "generic closers: Vec<..> and the <F: ..>");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n\"two\nline\"\nc");
        let find = |name: &str| ts.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 5);
    }
}
