//! CLI for `borg-lint`; see `--help`. Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error, 3 clean findings but rotted suppressions or
//! baseline entries (delete them).

use std::path::PathBuf;
use std::process::ExitCode;

use borg_lint::{
    json, lint_workspace, render_baseline, Allowlist, ReachKind, RuleId, WorkspaceReport,
};

const USAGE: &str = "\
borg-lint: workspace determinism & soundness lint (see DESIGN.md §10, §15)

usage: borg-lint [options]
  --root DIR             workspace root to scan (default: .)
  --baseline FILE        suppress diagnostics listed in FILE
                         (also read from $LINT_BASELINE when unset)
  --write-baseline FILE  write current diagnostics to FILE and exit 0
  --format text|json     findings format on stdout (default: text)
  --json FILE            also write the JSON report to FILE
  --explain FN           print why FN is contract/pool-policed (the
                         reachability chain from the nearest root)
  --dump-graph           print the contract/pool reachability set
                         (file:line\\tfn\\tscope, sorted) and exit
  --list-rules           print the rule catalogue and exit
  -q, --quiet            print only the summary line

exit codes: 0 clean · 1 findings · 2 usage/IO error · 3 clean but
unused suppressions or baseline entries remain
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut json_file: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut explain: Option<String> = None;
    let mut dump_graph = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                Some(other) => {
                    return usage_error(&format!("--format must be text or json, got `{other}`"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_file = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--explain" => match args.next() {
                Some(v) => explain = Some(v),
                None => return usage_error("--explain needs a function name"),
            },
            "--dump-graph" => dump_graph = true,
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{} {}: {}", r.id(), r.slug(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if baseline.is_none() {
        if let Ok(env) = std::env::var("LINT_BASELINE") {
            if !env.is_empty() {
                baseline = Some(PathBuf::from(env));
            }
        }
    }
    let allow = match &baseline {
        None => Allowlist::empty(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return io_error(&format!("reading {}: {e}", path.display())),
            };
            match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => return io_error(&e),
            }
        }
    };

    let report = match lint_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => return io_error(&format!("scanning {}: {e}", root.display())),
    };

    if dump_graph {
        println!("{}", report.graph.dump(&report.reach));
        return ExitCode::SUCCESS;
    }
    if let Some(needle) = explain {
        return explain_fn(&report, &needle);
    }

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, render_baseline(&report.diags)) {
            return io_error(&format!("writing {}: {e}", path.display()));
        }
        println!(
            "borg-lint: wrote {} entries to {}",
            report.diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &json_file {
        if let Err(e) = std::fs::write(path, json::render_report(&report)) {
            return io_error(&format!("writing {}: {e}", path.display()));
        }
    }
    if format == "json" {
        print!("{}", json::render_report(&report));
        return if report.diags.is_empty() {
            if report.unused.is_empty() && report.unused_baseline.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(3)
            }
        } else {
            ExitCode::FAILURE
        };
    }

    if !quiet {
        for d in &report.diags {
            println!("{}", d.render());
        }
        for u in &report.unused {
            println!("warning: {}", u.render());
        }
        for e in &report.unused_baseline {
            println!("warning: unused baseline entry `{e}` (no finding matches; delete it)");
        }
    }
    let n = report.diags.len();
    let rotted = report.unused.len() + report.unused_baseline.len();
    if n > 0 {
        println!(
            "borg-lint: {n} diagnostic{} (suppress at the site with `// lint: <rule>-ok \
             (reason)` or run with --write-baseline)",
            if n == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    } else if rotted > 0 {
        println!(
            "borg-lint: clean, but {rotted} rotted suppression{}/baseline entr{} remain — \
             delete them",
            if rotted == 1 { "" } else { "s" },
            if rotted == 1 { "y" } else { "ies" }
        );
        ExitCode::from(3)
    } else {
        println!(
            "borg-lint: clean ({} files, {} fns, {:.1} ms)",
            report.n_files,
            report.graph.nodes.len(),
            report.total_ms
        );
        ExitCode::SUCCESS
    }
}

/// `--explain FN`: prints, for every function matching `FN`, the BFS
/// chain from the nearest contract root and pool worker (if policed).
fn explain_fn(report: &WorkspaceReport, needle: &str) -> ExitCode {
    let hits = report.graph.find(needle);
    if hits.is_empty() {
        println!("borg-lint: no function named `{needle}` in the workspace graph");
        return ExitCode::FAILURE;
    }
    for node in hits {
        println!("{}", report.graph.describe(node));
        let mut policed = false;
        for (kind, label) in [(ReachKind::Contract, "contract"), (ReachKind::Pool, "pool")] {
            if let Some(chain) = report.graph.chain(&report.reach, kind, node) {
                policed = true;
                println!("  {label}-reachable via:");
                for (depth, &n) in chain.iter().enumerate() {
                    println!("    {}{}", "  ".repeat(depth), report.graph.describe(n));
                }
            }
        }
        if !policed {
            println!("  not contract- or pool-reachable: C2/C3 do not apply here");
        }
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("borg-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("borg-lint: {msg}");
    ExitCode::from(2)
}
