//! CLI for `borg-lint`; see `--help`. Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use borg_lint::{lint_workspace, render_baseline, Allowlist, RuleId};

const USAGE: &str = "\
borg-lint: workspace determinism & soundness lint (see DESIGN.md §10)

usage: borg-lint [options]
  --root DIR             workspace root to scan (default: .)
  --baseline FILE        suppress diagnostics listed in FILE
                         (also read from $LINT_BASELINE when unset)
  --write-baseline FILE  write current diagnostics to FILE and exit 0
  --list-rules           print the rule catalogue and exit
  -q, --quiet            print only the summary line
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{} {}: {}", r.id(), r.slug(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if baseline.is_none() {
        if let Ok(env) = std::env::var("LINT_BASELINE") {
            if !env.is_empty() {
                baseline = Some(PathBuf::from(env));
            }
        }
    }
    let allow = match &baseline {
        None => Allowlist::empty(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return io_error(&format!("reading {}: {e}", path.display())),
            };
            match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => return io_error(&e),
            }
        }
    };

    let diags = match lint_workspace(&root, &allow) {
        Ok(d) => d,
        Err(e) => return io_error(&format!("scanning {}: {e}", root.display())),
    };

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, render_baseline(&diags)) {
            return io_error(&format!("writing {}: {e}", path.display()));
        }
        println!(
            "borg-lint: wrote {} entries to {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if !quiet {
        for d in &diags {
            println!("{}", d.render());
        }
    }
    if diags.is_empty() {
        println!("borg-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "borg-lint: {} diagnostic{} (suppress at the site with `// lint: <rule>-ok (reason)` \
             or run with --write-baseline)",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("borg-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("borg-lint: {msg}");
    ExitCode::from(2)
}
