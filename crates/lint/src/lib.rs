//! `borg-lint` — workspace determinism & soundness lint pass.
//!
//! An offline, dependency-free static-analysis tool enforcing the
//! project invariants that the bit-identity contracts (parallel ==
//! sequential query scans, indexed == naive placement, sharded ==
//! single-index) and the paper's figure-reproducibility rest on. It
//! lexes every `.rs` file in the workspace with its own token-level
//! lexer ([`lexer`]), recovers items and call sites with a lightweight
//! parser ([`parse`]), resolves a workspace call graph ([`graph`]),
//! and runs ten named, individually-suppressable rules ([`rules`])
//! over the streams. DESIGN.md §10 has the per-file rule catalogue;
//! §15 covers the call-graph contract analysis.
//!
//! Scope, by construction:
//!
//! - **Deterministic crates** — `sim`, `workload`, `query`, `analysis`,
//!   `core`, `trace`, `telemetry`, and the root `borg2019` façade — get
//!   the determinism rules (D1–D3), the channel rule (C1), and the
//!   library-panic rule (S2) on their library code.
//! - **Contract-reachable code** — everything transitively callable
//!   from [`graph::CONTRACT_ROOTS`] — additionally gets C3
//!   (order-sensitive reductions); code reachable from a `WorkerPool`
//!   worker fn gets C2 (panic paths across the pool). These scopes are
//!   *computed*, not listed: a new helper called from a contract root
//!   is policed the day it is written.
//! - `bench` and `criterion` are exempt from D2 (timing is their job),
//!   as is the one *blessed* wall-clock helper
//!   (`crates/telemetry/src/clock.rs`).
//! - Tests, benches and examples are exempt from D1–D3/C1–C3/S2: they
//!   may iterate maps and unwrap freely. `#[cfg(test)]` modules inside
//!   library files are recognised and skipped the same way, and test
//!   functions never enter the call graph.
//! - S1 (`unsafe` needs `// SAFETY:`) applies to every scanned file.
//! - The vendored shim crates (`rand`, `proptest`, `criterion`) are
//!   scanned (S1/D2 where applicable); `borg-lint` itself is not — its
//!   sources quote the very patterns it hunts.

pub mod graph;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use graph::{CallGraph, FileScope, ReachKind, Reachability, CONTRACT_ROOTS};
pub use rules::{Diagnostic, RuleId, UnusedSuppression};

use lexer::{lex, Tok, TokKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Crates whose outputs must be reproducible bit-for-bit run to run.
/// `telemetry` is included deliberately: its deterministic plane is part
/// of the byte-identity contracts, and its one wall-clock site
/// (`crates/telemetry/src/clock.rs`) is the D2 blessed helper rather
/// than an unscanned hole.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "workload",
    "query",
    "analysis",
    "core",
    "trace",
    "telemetry",
    "serve",
    "borg2019",
];

/// Which cargo target kind a file belongs to; rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// Lint-relevant classification of one workspace file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Directory name under `crates/` (or `borg2019` for the root
    /// package).
    pub krate: String,
    pub target: Target,
    /// True for [`DETERMINISTIC_CRATES`].
    pub deterministic: bool,
}

/// Classifies a repo-relative, `/`-separated path. `None` means the
/// file is out of scope entirely (the linter itself, its fixtures,
/// build artifacts).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.starts_with("target/") || rel.starts_with("crates/lint/") {
        return None;
    }
    let (krate, rest) = match rel.strip_prefix("crates/") {
        Some(r) => {
            let (k, rest) = r.split_once('/')?;
            (k.to_string(), rest)
        }
        None => ("borg2019".to_string(), rel),
    };
    let target = if rest.starts_with("src/bin/") || rest == "src/main.rs" {
        Target::Bin
    } else if rest.starts_with("src/") {
        Target::Lib
    } else if rest.starts_with("tests/") {
        Target::Test
    } else if rest.starts_with("benches/") {
        Target::Bench
    } else if rest.starts_with("examples/") {
        Target::Example
    } else {
        return None;
    };
    let deterministic = DETERMINISTIC_CRATES.contains(&krate.as_str());
    Some(FileClass {
        krate,
        target,
        deterministic,
    })
}

/// Accumulated wall time per rule/stage, in milliseconds, in first-seen
/// order. CI budgets the total; the per-entry split tells you which
/// rule to fix when the budget trips.
#[derive(Debug, Default)]
pub struct Timings {
    entries: Vec<(String, f64)>,
}

impl Timings {
    pub fn add(&mut self, key: &str, ms: f64) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some(e) => e.1 += ms,
            None => self.entries.push((key.to_string(), ms)),
        }
    }

    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }
}

/// Everything one workspace lint run produced.
pub struct WorkspaceReport {
    /// Findings, baseline-filtered, sorted by (file, line, rule).
    pub diags: Vec<Diagnostic>,
    /// Site suppressions no finding consumed (and unknown markers).
    pub unused: Vec<UnusedSuppression>,
    /// Baseline entries no finding matched, in `path:line:RULE` form.
    pub unused_baseline: Vec<String>,
    pub timings: Timings,
    pub total_ms: f64,
    pub graph: CallGraph,
    pub reach: Reachability,
    /// Per-file policed line ranges, indexed like `graph.files`.
    pub scopes: Vec<FileScope>,
    pub n_files: usize,
}

impl WorkspaceReport {
    /// Repo-relative paths of files with at least one
    /// contract-reachable function — the computed successor of the old
    /// hand-named `BIT_IDENTITY_FILES` list.
    pub fn contract_files(&self) -> Vec<&str> {
        self.graph
            .files
            .iter()
            .zip(&self.scopes)
            .filter(|(_, s)| !s.contract.is_empty())
            .map(|(f, _)| f.as_str())
            .collect()
    }
}

/// Lints a set of in-memory sources as one workspace: lex → parse →
/// call graph → reachability → rules. `files` holds `(rel_path, src)`
/// pairs; out-of-scope paths are skipped. Contract roots are required
/// only when their anchor file is in the set, so single-file fixtures
/// exercise the reachability engine without dragging in the tree.
pub fn lint_sources(files: &[(String, String)], allow: &Allowlist) -> WorkspaceReport {
    let t_total = Instant::now();
    let mut timings = Timings::default();

    struct Prepped {
        rel: String,
        fc: FileClass,
        toks: Vec<Tok>,
        comments: Vec<(u32, String)>,
        in_test: Vec<bool>,
    }

    let t0 = Instant::now();
    let mut prepped: Vec<Prepped> = Vec::new();
    for (rel, src) in files {
        let Some(fc) = classify(rel) else { continue };
        let all = lex(src);
        let mut comments: Vec<(u32, String)> = Vec::new();
        let mut toks: Vec<Tok> = Vec::with_capacity(all.len());
        for t in all {
            if t.kind == TokKind::Comment {
                // A block comment spanning lines suppresses/justifies
                // only at its start line; good enough for `// …` markers.
                comments.push((t.line, t.text));
            } else {
                toks.push(t);
            }
        }
        let in_test = rules::test_regions(&toks);
        prepped.push(Prepped {
            rel: rel.clone(),
            fc,
            toks,
            comments,
            in_test,
        });
    }
    timings.add("lex", t0.elapsed().as_secs_f64() * 1e3);

    let t0 = Instant::now();
    let parsed: Vec<(String, FileClass, parse::ParsedFile)> = prepped
        .iter()
        .map(|p| {
            (
                p.rel.clone(),
                p.fc.clone(),
                parse::parse_file(&p.toks, &p.in_test),
            )
        })
        .collect();
    timings.add("parse", t0.elapsed().as_secs_f64() * 1e3);

    let t0 = Instant::now();
    let graph = CallGraph::build(&parsed);
    let reach = graph.reach();
    let scopes = graph.file_scopes(&reach);
    timings.add("graph", t0.elapsed().as_secs_f64() * 1e3);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut unused: Vec<UnusedSuppression> = Vec::new();
    for (p, scope) in prepped.iter().zip(&scopes) {
        let outcome = rules::lint_tokens(
            &rules::FileInput {
                rel: &p.rel,
                toks: &p.toks,
                comments: &p.comments,
                in_test: &p.in_test,
                fc: &p.fc,
                scope,
            },
            &mut timings,
        );
        diags.extend(outcome.diags);
        unused.extend(outcome.unused);
    }
    // G1: contract roots whose file is present but whose fn is gone —
    // the root table rotted and the contract scope silently shrank.
    for (file, qual) in &graph.missing_roots {
        diags.push(Diagnostic {
            file: file.clone(),
            line: 1,
            rule: RuleId::G1,
            message: format!(
                "contract root `{qual}` is not defined in this file; if it moved or was \
                 renamed, update graph::CONTRACT_ROOTS — the contract scope must not \
                 silently shrink"
            ),
        });
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    // Baseline filtering, tracking which entries still earn their keep.
    let mut entry_used = vec![false; allow.len()];
    diags.retain(|d| match allow.matching(d) {
        Some(i) => {
            entry_used[i] = true;
            false
        }
        None => true,
    });
    let unused_baseline: Vec<String> = entry_used
        .iter()
        .enumerate()
        .filter(|(_, used)| !**used)
        .map(|(i, _)| allow.render_entry(i))
        .collect();

    let n_files = prepped.len();
    WorkspaceReport {
        diags,
        unused,
        unused_baseline,
        timings,
        total_ms: t_total.elapsed().as_secs_f64() * 1e3,
        graph,
        reach,
        scopes,
        n_files,
    }
}

/// Lints one source text under its repo-relative path (single-file
/// workspace; see [`lint_sources`]). Out-of-scope paths return no
/// diagnostics.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    lint_sources(&[(rel.to_string(), src.to_string())], &Allowlist::empty()).diags
}

/// An allowlist/baseline: `path:line:RULE` or `path:*:RULE` entries,
/// one per line, `#` comments and blank lines ignored. Paths are
/// repo-relative with `/` separators.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, Option<u32>, String)>,
}

impl Allowlist {
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the allowlist format; returns a line-numbered error for
    /// malformed entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Split from the right: paths contain no ':', but be strict.
            let mut parts = line.rsplitn(3, ':');
            let (rule, lineno, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(l), Some(p)) => (r.trim(), l.trim(), p.trim()),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `path:line:RULE`, got `{line}`",
                        no + 1
                    ))
                }
            };
            let lineno = if lineno == "*" {
                None
            } else {
                Some(lineno.parse::<u32>().map_err(|_| {
                    format!("allowlist line {}: bad line number `{lineno}`", no + 1)
                })?)
            };
            entries.push((path.to_string(), lineno, rule.to_string()));
        }
        Ok(Self { entries })
    }

    /// True when `d` is covered by an entry.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.matching(d).is_some()
    }

    /// Index of the first entry covering `d`, for used-entry tracking.
    pub fn matching(&self, d: &Diagnostic) -> Option<usize> {
        self.entries.iter().position(|(path, line, rule)| {
            path == &d.file && rule == d.rule.id() && line.map(|l| l == d.line).unwrap_or(true)
        })
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders entry `i` back to its `path:line:RULE` form.
    pub fn render_entry(&self, i: usize) -> String {
        let (path, line, rule) = &self.entries[i];
        match line {
            Some(l) => format!("{path}:{l}:{rule}"),
            None => format!("{path}:*:{rule}"),
        }
    }
}

/// Renders diagnostics in allowlist format, for `--write-baseline`.
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# borg-lint baseline: pre-existing diagnostics tolerated during incremental\n\
         # adoption. Format: path:line:RULE (line may be `*`). Shrink me over time.\n",
    );
    for d in diags {
        out.push_str(&format!("{}:{}:{}\n", d.file, d.line, d.rule.id()));
    }
    out
}

/// Collects every in-scope `.rs` file under `root` (sorted, so runs
/// are deterministic) and lints the set as one workspace.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<WorkspaceReport> {
    let mut rels = Vec::new();
    collect_rs_files(root, root, &mut rels)?;
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    Ok(lint_sources(&files, allow))
}

/// Recursive walk gathering `.rs` paths relative to `root`, skipping
/// VCS metadata, build output, and the linter's own sources.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative_unix(root, &path) {
                if classify(&rel).is_some() {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` if not under root.
fn relative_unix(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_scopes() {
        let fc = classify("crates/sim/src/cell.rs").unwrap();
        assert!(fc.deterministic);
        assert_eq!(fc.target, Target::Lib);

        let fc = classify("crates/sim/tests/behavior.rs").unwrap();
        assert_eq!(fc.target, Target::Test);

        let fc = classify("crates/experiments/src/bin/all.rs").unwrap();
        assert!(!fc.deterministic);
        assert_eq!(fc.target, Target::Bin);

        let fc = classify("src/lib.rs").unwrap();
        assert_eq!(fc.krate, "borg2019");
        assert!(fc.deterministic);

        assert!(classify("crates/lint/src/lib.rs").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn allowlist_round_trip() {
        let d = Diagnostic {
            file: "crates/sim/src/cell.rs".into(),
            line: 42,
            rule: RuleId::D1,
            message: String::new(),
        };
        let text = render_baseline(std::slice::from_ref(&d));
        let allow = Allowlist::parse(&text).unwrap();
        assert!(allow.allows(&d));

        let wildcard = Allowlist::parse("crates/sim/src/cell.rs:*:D1\n").unwrap();
        assert!(wildcard.allows(&d));
        let other = Allowlist::parse("crates/sim/src/cell.rs:41:D1\n").unwrap();
        assert!(!other.allows(&d));
        assert!(Allowlist::parse("nonsense").is_err());
    }

    #[test]
    fn unused_baseline_entries_are_reported() {
        let allow = Allowlist::parse("crates/sim/src/cell.rs:999:D1\n# comment\n").unwrap();
        let report = lint_sources(
            &[(
                "crates/sim/src/other.rs".to_string(),
                "pub fn f() {}\n".to_string(),
            )],
            &allow,
        );
        assert_eq!(
            report.unused_baseline,
            vec!["crates/sim/src/cell.rs:999:D1"]
        );
    }
}
