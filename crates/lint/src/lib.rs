//! `borg-lint` — workspace determinism & soundness lint pass.
//!
//! An offline, dependency-free static-analysis tool enforcing the
//! project invariants that the bit-identity contracts (parallel ==
//! sequential query scans, indexed == naive placement) and the paper's
//! figure-reproducibility rest on. It lexes every `.rs` file in the
//! workspace with its own token-level lexer ([`lexer`]) and runs six
//! named, individually-suppressable rules ([`rules`]) over the stream.
//! DESIGN.md §10 has the rule catalogue and the rationale.
//!
//! Scope, by construction:
//!
//! - **Deterministic crates** — `sim`, `workload`, `query`, `analysis`,
//!   `core`, `trace`, `telemetry`, and the root `borg2019` façade — get
//!   the determinism rules (D1–D3) and the library-panic rule (S2) on
//!   their library code.
//! - `bench` and `criterion` are exempt from D2 (timing is their job),
//!   as is the one *blessed* wall-clock helper
//!   (`crates/telemetry/src/clock.rs`): telemetry's timing plane routes
//!   every duration through it, keeping clock reads auditable at a
//!   single site.
//! - Tests, benches and examples are exempt from D1–D3/S2: they may
//!   iterate maps and unwrap freely. `#[cfg(test)]` modules inside
//!   library files are recognised and skipped the same way.
//! - S1 (`unsafe` needs `// SAFETY:`) applies to every scanned file.
//! - The vendored shim crates (`rand`, `proptest`, `criterion`) are
//!   scanned (S1/D2 where applicable); `borg-lint` itself is not — its
//!   sources quote the very patterns it hunts.

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, RuleId};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose outputs must be reproducible bit-for-bit run to run.
/// `telemetry` is included deliberately: its deterministic plane is part
/// of the byte-identity contracts, and its one wall-clock site
/// (`crates/telemetry/src/clock.rs`) is the D2 blessed helper rather
/// than an unscanned hole.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "workload",
    "query",
    "analysis",
    "core",
    "trace",
    "telemetry",
    "borg2019",
];

/// Which cargo target kind a file belongs to; rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// Lint-relevant classification of one workspace file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Directory name under `crates/` (or `borg2019` for the root
    /// package).
    pub krate: String,
    pub target: Target,
    /// True for [`DETERMINISTIC_CRATES`].
    pub deterministic: bool,
}

/// Classifies a repo-relative, `/`-separated path. `None` means the
/// file is out of scope entirely (the linter itself, its fixtures,
/// build artifacts).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.starts_with("target/") || rel.starts_with("crates/lint/") {
        return None;
    }
    let (krate, rest) = match rel.strip_prefix("crates/") {
        Some(r) => {
            let (k, rest) = r.split_once('/')?;
            (k.to_string(), rest)
        }
        None => ("borg2019".to_string(), rel),
    };
    let target = if rest.starts_with("src/bin/") || rest == "src/main.rs" {
        Target::Bin
    } else if rest.starts_with("src/") {
        Target::Lib
    } else if rest.starts_with("tests/") {
        Target::Test
    } else if rest.starts_with("benches/") {
        Target::Bench
    } else if rest.starts_with("examples/") {
        Target::Example
    } else {
        return None;
    };
    let deterministic = DETERMINISTIC_CRATES.contains(&krate.as_str());
    Some(FileClass {
        krate,
        target,
        deterministic,
    })
}

/// Lints one source text under its repo-relative path. Out-of-scope
/// paths return no diagnostics.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    match classify(rel) {
        Some(fc) => rules::lint_file(rel, src, &fc),
        None => Vec::new(),
    }
}

/// An allowlist/baseline: `path:line:RULE` or `path:*:RULE` entries,
/// one per line, `#` comments and blank lines ignored. Paths are
/// repo-relative with `/` separators.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, Option<u32>, String)>,
}

impl Allowlist {
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the allowlist format; returns a line-numbered error for
    /// malformed entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Split from the right: paths contain no ':', but be strict.
            let mut parts = line.rsplitn(3, ':');
            let (rule, lineno, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(l), Some(p)) => (r.trim(), l.trim(), p.trim()),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `path:line:RULE`, got `{line}`",
                        no + 1
                    ))
                }
            };
            let lineno = if lineno == "*" {
                None
            } else {
                Some(lineno.parse::<u32>().map_err(|_| {
                    format!("allowlist line {}: bad line number `{lineno}`", no + 1)
                })?)
            };
            entries.push((path.to_string(), lineno, rule.to_string()));
        }
        Ok(Self { entries })
    }

    /// True when `d` is covered by an entry.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.entries.iter().any(|(path, line, rule)| {
            path == &d.file && rule == d.rule.id() && line.map(|l| l == d.line).unwrap_or(true)
        })
    }
}

/// Renders diagnostics in allowlist format, for `--write-baseline`.
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# borg-lint baseline: pre-existing diagnostics tolerated during incremental\n\
         # adoption. Format: path:line:RULE (line may be `*`). Shrink me over time.\n",
    );
    for d in diags {
        out.push_str(&format!("{}:{}:{}\n", d.file, d.line, d.rule.id()));
    }
    out
}

/// Collects every in-scope `.rs` file under `root` (sorted, so runs
/// are deterministic) and lints it. `allow` filters the result.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        out.extend(
            lint_source(&rel, &src)
                .into_iter()
                .filter(|d| !allow.allows(d)),
        );
    }
    Ok(out)
}

/// Recursive walk gathering `.rs` paths relative to `root`, skipping
/// VCS metadata, build output, and the linter's own sources.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative_unix(root, &path) {
                if classify(&rel).is_some() {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` if not under root.
fn relative_unix(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_scopes() {
        let fc = classify("crates/sim/src/cell.rs").unwrap();
        assert!(fc.deterministic);
        assert_eq!(fc.target, Target::Lib);

        let fc = classify("crates/sim/tests/behavior.rs").unwrap();
        assert_eq!(fc.target, Target::Test);

        let fc = classify("crates/experiments/src/bin/all.rs").unwrap();
        assert!(!fc.deterministic);
        assert_eq!(fc.target, Target::Bin);

        let fc = classify("src/lib.rs").unwrap();
        assert_eq!(fc.krate, "borg2019");
        assert!(fc.deterministic);

        assert!(classify("crates/lint/src/lib.rs").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn allowlist_round_trip() {
        let d = Diagnostic {
            file: "crates/sim/src/cell.rs".into(),
            line: 42,
            rule: RuleId::D1,
            message: String::new(),
        };
        let text = render_baseline(std::slice::from_ref(&d));
        let allow = Allowlist::parse(&text).unwrap();
        assert!(allow.allows(&d));

        let wildcard = Allowlist::parse("crates/sim/src/cell.rs:*:D1\n").unwrap();
        assert!(wildcard.allows(&d));
        let other = Allowlist::parse("crates/sim/src/cell.rs:41:D1\n").unwrap();
        assert!(!other.allows(&d));
        assert!(Allowlist::parse("nonsense").is_err());
    }
}
