//! The rule engine: six named rules pattern-matched over the token
//! stream from [`crate::lexer`].
//!
//! | ID | slug                        | hazard                                          |
//! |----|-----------------------------|-------------------------------------------------|
//! | D1 | nondeterministic-iteration  | iterating hash maps/sets in deterministic crates|
//! | D2 | nondeterministic-source     | wall clock, entropy, thread identity            |
//! | D3 | float-reduction             | partial-order float compares; re-associable sums|
//! | S1 | undocumented-unsafe         | `unsafe` without a `// SAFETY:` comment         |
//! | S2 | library-panic               | `unwrap`/`expect`/`panic!` in library code      |
//! | S3 | truncating-cast             | `as u32` in the query crate's code paths        |
//!
//! Every diagnostic is suppressable at the site with
//! `// lint: <slug>-ok (reason)` (or `// lint: <ID>-ok (reason)`) on
//! the same line or the line above; the reason is mandatory. The rules
//! are heuristic by design — they run on tokens, not types — and the
//! scoping that keeps them honest lives in [`crate::FileClass`].

use crate::lexer::{lex, Tok, TokKind};
use crate::{FileClass, Target};

/// Stable identifiers for the rule catalogue (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D1,
    D2,
    D3,
    S1,
    S2,
    S3,
}

impl RuleId {
    /// All rules, in catalogue order.
    pub const ALL: [RuleId; 6] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::S1,
        RuleId::S2,
        RuleId::S3,
    ];

    /// Short ID as printed in diagnostics and allowlists.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::S1 => "S1",
            RuleId::S2 => "S2",
            RuleId::S3 => "S3",
        }
    }

    /// Human slug used in suppression comments: `// lint: <slug>-ok (…)`.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::D1 => "nondeterministic-iteration",
            RuleId::D2 => "nondeterministic-source",
            RuleId::D3 => "float-reduction",
            RuleId::S1 => "undocumented-unsafe",
            RuleId::S2 => "library-panic",
            RuleId::S3 => "truncating-cast",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "iteration over HashMap/HashSet/FxHashMap/FxHashSet in a deterministic crate; \
                 route through a sorted-iteration helper (fxhash::sorted_*) or annotate"
            }
            RuleId::D2 => {
                "wall-clock/entropy/thread-identity source (SystemTime::now, Instant::now, \
                 thread::current, thread_rng, from_entropy) outside bench/criterion"
            }
            RuleId::D3 => {
                "float reduction hazard: partial_cmp().unwrap()/expect() comparators (use \
                 total_cmp or handle None), or sum/fold over floats in bit-identity files \
                 (use the sequential helpers)"
            }
            RuleId::S1 => "`unsafe` without a `// SAFETY:` comment in the preceding three lines",
            RuleId::S2 => "unwrap()/expect()/panic! in deterministic-crate library code",
            RuleId::S3 => {
                "truncating `as u32` cast in borg-query library code; use cast::code32 / \
                 u32::try_from"
            }
        }
    }
}

/// One finding: file, 1-based line, rule, free-text message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl Diagnostic {
    /// Renders in the `file:line: ID slug: message` shape check.sh greps.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }
}

/// Hash-container type names whose iteration order is arbitrary.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods on those containers that yield (or consume in) arbitrary
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Files under the bit-identity contract (parallel == sequential query,
/// indexed == naive placement): D3 additionally polices re-associable
/// float accumulation here.
const BIT_IDENTITY_FILES: &[&str] = &[
    "crates/query/src/parallel.rs",
    "crates/query/src/groupby.rs",
    "crates/sim/src/index.rs",
    "crates/sim/src/shard.rs",
    "crates/sim/src/pool.rs",
];

/// Iterator reductions whose winner depends on visit order when scores
/// tie (or on float associativity): in a bit-identity file, per-shard
/// results must flow through the blessed fixed-order combining loop
/// (`shard::combine_winners`) instead.
const ORDER_SENSITIVE_REDUCERS: &[&str] =
    &["reduce", "min_by", "max_by", "min_by_key", "max_by_key"];

/// Blessed wall-clock helpers: the only non-bench library files allowed
/// the D2 time/entropy sources. Telemetry's timing plane routes every
/// duration through `telemetry::clock::now_ns`, which keeps wall-clock
/// reads auditable at one site instead of suppressed ad hoc (DESIGN.md
/// §12); the values it yields are confined to the timing plane and
/// excluded from every determinism contract.
const D2_BLESSED_FILES: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Lints one file. `rel` is the repo-relative, `/`-separated path; it
/// selects rule scope via `fc` (see [`crate::classify`]).
pub fn lint_file(rel: &str, src: &str, fc: &FileClass) -> Vec<Diagnostic> {
    let all = lex(src);
    let mut comments: Vec<(u32, String)> = Vec::new();
    let mut toks: Vec<Tok> = Vec::with_capacity(all.len());
    for t in all {
        if t.kind == TokKind::Comment {
            // A block comment spanning lines suppresses/justifies only
            // at its start line; good enough for `// …` style markers.
            comments.push((t.line, t.text));
        } else {
            toks.push(t);
        }
    }
    let in_test = test_regions(&toks);

    let mut ctx = Ctx {
        rel,
        toks: &toks,
        comments: &comments,
        in_test: &in_test,
        out: Vec::new(),
    };

    let deterministic_lib = fc.deterministic && fc.target == Target::Lib;
    if deterministic_lib {
        rule_d1(&mut ctx);
        rule_d3(&mut ctx);
        rule_s2(&mut ctx);
    }
    if !matches!(fc.krate.as_str(), "criterion" | "bench")
        && matches!(fc.target, Target::Lib | Target::Bin)
        && !D2_BLESSED_FILES.contains(&rel)
    {
        rule_d2(&mut ctx);
    }
    rule_s1(&mut ctx);
    if fc.krate == "query" && fc.target == Target::Lib {
        rule_s3(&mut ctx);
    }

    ctx.out.sort_by_key(|d| (d.line, d.rule));
    ctx.out
}

/// Shared per-file state threaded through the rule passes.
struct Ctx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    comments: &'a [(u32, String)],
    in_test: &'a [bool],
    out: Vec<Diagnostic>,
}

impl Ctx<'_> {
    /// Emits unless a `// lint: <slug|ID>-ok (reason)` comment covers
    /// `line` (same line or the line above, reason required).
    fn emit(&mut self, line: u32, rule: RuleId, message: String) {
        if self.suppressed(line, rule) {
            return;
        }
        self.out.push(Diagnostic {
            file: self.rel.to_string(),
            line,
            rule,
            message,
        });
    }

    fn suppressed(&self, line: u32, rule: RuleId) -> bool {
        self.comments
            .iter()
            .filter(|(l, _)| *l == line || *l + 1 == line)
            .any(|(_, text)| has_suppression(text, rule))
    }

    /// True when a `// SAFETY:` comment sits on `line` or within the
    /// three lines above it.
    fn has_safety_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .filter(|(l, _)| *l <= line && *l + 3 >= line)
            .any(|(_, text)| text.contains("SAFETY:"))
    }
}

/// Parses `lint: <marker>-ok (reason)` out of a comment; the reason
/// must be non-empty. Both the slug and the short ID (any case) work
/// as markers, and one comment may carry several markers.
fn has_suppression(comment: &str, rule: RuleId) -> bool {
    let lower = comment.to_ascii_lowercase();
    let Some(pos) = lower.find("lint:") else {
        return false;
    };
    let body = &lower[pos + "lint:".len()..];
    for marker in [rule.slug().to_string(), rule.id().to_ascii_lowercase()] {
        let needle = format!("{marker}-ok");
        let mut search = body;
        while let Some(at) = search.find(&needle) {
            let after = search[at + needle.len()..].trim_start();
            if let Some(rest) = after.strip_prefix('(') {
                if let Some(close) = rest.find(')') {
                    if !rest[..close].trim().is_empty() {
                        return true;
                    }
                }
            }
            search = &search[at + needle.len()..];
        }
    }
    false
}

/// Marks tokens covered by `#[test]`-like or `#[cfg(test)]`-gated
/// items (including the attribute itself). `#[cfg(not(test))]` does
/// not count.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && i + 1 < toks.len()
            && toks[i + 1].text == "[")
        {
            i += 1;
            continue;
        }
        // Collect the attribute's idents up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                (TokKind::Ident, "test") => has_test = true,
                (TokKind::Ident, "not") => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut d = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The item body: first top-level `{`..matching `}`, or a `;`.
        let mut bracket = 0isize; // (, [, < are NOT tracked; braces/parens suffice
        let mut end = j;
        while end < toks.len() {
            if toks[end].kind == TokKind::Punct {
                match toks[end].text.as_str() {
                    "(" | "[" => bracket += 1,
                    ")" | "]" => bracket -= 1,
                    ";" if bracket == 0 => break,
                    "{" if bracket == 0 => {
                        let mut braces = 0usize;
                        while end < toks.len() {
                            if toks[end].kind == TokKind::Punct {
                                match toks[end].text.as_str() {
                                    "{" => braces += 1,
                                    "}" => {
                                        braces -= 1;
                                        if braces == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            end += 1;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            end += 1;
        }
        for m in mask
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Where a hash container name was introduced; decides which receiver
/// shapes count as uses of *that* container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeclKind {
    /// `let`-bound local: bare `name.iter()` / `for _ in &name` match.
    Local,
    /// Struct field (or parameter): only `self.name.iter()` matches,
    /// so a same-named local `Vec` does not false-positive.
    Field,
}

/// D1: iteration over hash maps/sets. Tracks names declared with a
/// hash-container type in this file, then flags order-producing method
/// calls and `for … in` loops over them.
fn rule_d1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    let mut names: Vec<(String, DeclKind)> = Vec::new();
    let add = |name: &str, kind: DeclKind, names: &mut Vec<(String, DeclKind)>| {
        if !names.iter().any(|(n, k)| n == name && *k == kind) {
            names.push((name.to_string(), kind));
        }
    };

    // Pass 1: declarations. Two shapes:
    //   `name: [path::]MapType<…>`          (field, param, or typed let)
    //   `[let [mut]] name = MapType::ctor(` (inferred let)
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !MAP_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if next == Some("<") {
            // Walk back over a path prefix (`std :: collections ::`).
            let mut k = i;
            while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
                k -= 2;
            }
            if k >= 2 && toks[k - 1].text == ":" && toks[k - 2].kind == TokKind::Ident {
                let name_idx = k - 2;
                let mut kind = DeclKind::Field;
                let lookback = name_idx.saturating_sub(2);
                if toks[lookback..name_idx].iter().any(|t| t.text == "let") {
                    kind = DeclKind::Local;
                }
                let name = toks[name_idx].text.clone();
                add(&name, kind, &mut names);
            }
        } else if next == Some("::")
            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident)
            && i >= 2
            && toks[i - 1].text == "="
            && toks[i - 2].kind == TokKind::Ident
        {
            let name_idx = i - 2;
            let lookback = name_idx.saturating_sub(2);
            if toks[lookback..name_idx].iter().any(|t| t.text == "let") {
                let name = toks[name_idx].text.clone();
                add(&name, DeclKind::Local, &mut names);
            }
        }
    }
    if names.is_empty() {
        return;
    }
    let kind_of = |name: &str, field: bool| -> Option<DeclKind> {
        let want = if field {
            DeclKind::Field
        } else {
            DeclKind::Local
        };
        names
            .iter()
            .find(|(n, k)| n == name && *k == want)
            .map(|(_, k)| *k)
    };

    // Pass 2: uses.
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];

        // `recv.name.iter()` / `name.iter()` method-call shape.
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks[i - 2].kind == TokKind::Ident
        {
            let recv = &toks[i - 2];
            let via_self = i >= 4 && toks[i - 3].text == "." && toks[i - 4].text == "self";
            let hit = kind_of(&recv.text, via_self).is_some()
                // A bare local is `name.iter()` with nothing (or non-dot)
                // before it.
                && (via_self || i < 4 || toks[i - 3].text != ".");
            if hit {
                let method = t.text.clone();
                let name = recv.text.clone();
                ctx.emit(
                    t.line,
                    RuleId::D1,
                    format!(
                        "`{name}.{method}()` iterates a hash container in arbitrary order; \
                         collect+sort via fxhash::sorted_* (or switch to BTreeMap) or annotate \
                         `// lint: nondeterministic-iteration-ok (reason)`"
                    ),
                );
            }
        }

        // `for pat in [&[mut]] [self.]name {` loop shape.
        if t.text == "for" {
            // Find `in` before the loop body opens.
            let mut j = i + 1;
            let mut depth = 0isize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "in" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || toks[j].text != "in" {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
                k += 1;
            }
            let via_self = toks.get(k).map(|t| t.text.as_str()) == Some("self")
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some(".");
            if via_self {
                k += 2;
            }
            let (Some(name_tok), Some(open)) = (toks.get(k), toks.get(k + 1)) else {
                continue;
            };
            if name_tok.kind == TokKind::Ident
                && open.text == "{"
                && kind_of(&name_tok.text, via_self).is_some()
            {
                let name = name_tok.text.clone();
                ctx.emit(
                    name_tok.line,
                    RuleId::D1,
                    format!(
                        "`for … in {name}` iterates a hash container in arbitrary order; \
                         collect+sort via fxhash::sorted_* (or switch to BTreeMap) or annotate \
                         `// lint: nondeterministic-iteration-ok (reason)`"
                    ),
                );
            }
        }
    }
}

/// D2: ambient nondeterminism sources.
fn rule_d2(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let path_call = |head: &str, tail: &str| {
            toks[i].text == head
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some(tail)
        };
        let found: Option<&str> = if path_call("SystemTime", "now") {
            Some("SystemTime::now")
        } else if path_call("Instant", "now") {
            Some("Instant::now")
        } else if path_call("thread", "current") {
            Some("thread::current")
        } else if path_call("RandomState", "new") {
            Some("RandomState::new")
        } else if toks[i].text == "thread_rng" || toks[i].text == "from_entropy" {
            Some(if toks[i].text == "thread_rng" {
                "thread_rng"
            } else {
                "from_entropy"
            })
        } else {
            None
        };
        if let Some(src) = found {
            ctx.emit(
                toks[i].line,
                RuleId::D2,
                format!(
                    "`{src}` injects wall-clock/entropy/thread identity into a reproducible \
                     path; thread config/seeds through explicitly or annotate \
                     `// lint: nondeterministic-source-ok (reason)`"
                ),
            );
        }
    }
}

/// D3: float-reduction hazards. Everywhere in scope:
/// `partial_cmp(…).unwrap()/.expect(…)`. In bit-identity files
/// additionally: `.sum::<f64|f32>()` and `fold(<float literal>`.
fn rule_d3(ctx: &mut Ctx) {
    let toks = ctx.toks;
    let contract_file = BIT_IDENTITY_FILES.contains(&ctx.rel);
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];

        if t.text == "partial_cmp" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            // Skip to the matching `)` and look for `.unwrap(`/`.expect(`.
            let mut depth = 0isize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let unwrapped = toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
                && matches!(
                    toks.get(j + 2).map(|t| t.text.as_str()),
                    Some("unwrap") | Some("expect")
                );
            if unwrapped {
                ctx.emit(
                    t.line,
                    RuleId::D3,
                    "`partial_cmp().unwrap()` treats a partial order as total and panics on \
                     NaN; use `total_cmp` (or handle the None arm explicitly, e.g. \
                     `unwrap_or(Ordering::Equal)` where IEEE tie semantics are load-bearing)"
                        .to_string(),
                );
            }
        }

        if contract_file {
            if t.text == "sum"
                && toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) == Some(".")
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some("<")
                && matches!(
                    toks.get(i + 3).map(|t| t.text.as_str()),
                    Some("f64") | Some("f32")
                )
            {
                ctx.emit(
                    t.line,
                    RuleId::D3,
                    "float `.sum()` in a bit-identity file: re-associating this reduction \
                     changes results; use the blessed sequential helper (sum_seq) or annotate \
                     `// lint: float-reduction-ok (reason)`"
                        .to_string(),
                );
            }
            if t.text == "fold" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
                if let Some(seed) = toks.get(i + 2) {
                    let is_float = seed.kind == TokKind::Num
                        && (seed.text.contains('.')
                            || seed.text.ends_with("f32")
                            || seed.text.ends_with("f64"));
                    if is_float {
                        ctx.emit(
                            t.line,
                            RuleId::D3,
                            "float `fold` in a bit-identity file: re-associating this \
                             reduction changes results; use the blessed sequential helper \
                             (sum_seq) or annotate `// lint: float-reduction-ok (reason)`"
                                .to_string(),
                        );
                    }
                }
            }
            if ORDER_SENSITIVE_REDUCERS.contains(&t.text.as_str())
                && toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) == Some(".")
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            {
                ctx.emit(
                    t.line,
                    RuleId::D3,
                    format!(
                        "`.{}()` in a bit-identity file: an unordered reduction breaks the \
                         winner when scores tie; combine per-shard results through the \
                         blessed fixed-order loop (shard::combine_winners) or annotate \
                         `// lint: float-reduction-ok (reason)`",
                        t.text
                    ),
                );
            }
        }
    }
}

/// S1: every `unsafe` needs a `// SAFETY:` comment within three lines.
fn rule_s1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe` inside an attr (`#[allow(unsafe_code)]`) is not a
        // block; require the next meaningful token to open something.
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if !matches!(next, Some("{") | Some("fn") | Some("impl") | Some("trait")) {
            continue;
        }
        if !ctx.has_safety_comment(t.line) {
            ctx.emit(
                t.line,
                RuleId::S1,
                "`unsafe` without a `// SAFETY:` comment in the preceding three lines; \
                 document the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// S2: no unwrap/expect/panic! in deterministic-crate library code.
fn rule_s2(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        };
        if method_call("unwrap") || method_call("expect") {
            let what = t.text.clone();
            ctx.emit(
                t.line,
                RuleId::S2,
                format!(
                    "`.{what}()` in library code can panic at runtime; return an error, \
                     restructure so the invariant is type-checked, or annotate \
                     `// lint: library-panic-ok (reason)`"
                ),
            );
        }
        if t.text == "panic" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") {
            ctx.emit(
                t.line,
                RuleId::S2,
                "`panic!` in library code; return an error or annotate \
                 `// lint: library-panic-ok (reason)`"
                    .to_string(),
            );
        }
    }
}

/// S3: truncating `as u32` in borg-query library code.
fn rule_s3(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident || toks[i].text != "as" {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("u32") {
            ctx.emit(
                toks[i].line,
                RuleId::S3,
                "`as u32` silently truncates row counts/dictionary codes past 2^32; use \
                 cast::code32 (checked) or annotate `// lint: truncating-cast-ok (reason)`"
                    .to_string(),
            );
        }
    }
}
