//! The rule engine: eleven named rules pattern-matched over the token
//! stream from [`crate::lexer`], scoped by the call-graph reachability
//! computed in [`crate::graph`].
//!
//! | ID | slug                        | hazard                                          |
//! |----|-----------------------------|-------------------------------------------------|
//! | D1 | nondeterministic-iteration  | iterating hash maps/sets in deterministic crates|
//! | D2 | nondeterministic-source     | wall clock, entropy, thread identity            |
//! | D3 | float-reduction             | partial-order float compares treated as total   |
//! | C1 | channel-protocol            | untagged `send`; `recv` outside the pool API    |
//! | C2 | unwind-across-pool          | panic paths in code dispatched onto WorkerPool  |
//! | C3 | order-sensitive-reduction   | unordered reductions in contract-reachable code |
//! | S1 | undocumented-unsafe         | `unsafe` without a `// SAFETY:` comment         |
//! | S2 | library-panic               | `unwrap`/`expect`/`panic!` in library code      |
//! | S3 | truncating-cast             | `as u32` in the query crate's code paths        |
//! | G1 | contract-root               | a `CONTRACT_ROOTS` entry points at nothing      |
//! | M1 | unregistered-metric         | raw latency sample vectors outside the registry |
//!
//! C2 and C3 are the graph-scoped rules: they apply not to named files
//! but to every function transitively reachable from the contract
//! entry points ([`crate::graph::CONTRACT_ROOTS`]) or from a
//! `WorkerPool` worker function — `borg-lint --explain <fn>` prints the
//! chain that put a function in scope. G1 keeps the root table honest:
//! renaming an entry point without updating the table is itself a
//! finding, not a silent scope shrink.
//!
//! Every diagnostic is suppressable at the site with
//! `// lint: <slug>-ok (reason)` (or `// lint: <ID>-ok (reason)`) on
//! the same line or the line above; the reason is mandatory, and a
//! suppression whose site no longer fires is reported as *unused* (its
//! reason has rotted — delete it). The rules are heuristic by design —
//! they run on tokens, not types — and the scoping that keeps them
//! honest lives in [`crate::FileClass`] and [`crate::graph::FileScope`].

use crate::graph::FileScope;
use crate::lexer::{Tok, TokKind};
use crate::{FileClass, Target, Timings};
use std::time::Instant;

/// Stable identifiers for the rule catalogue (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D1,
    D2,
    D3,
    C1,
    C2,
    C3,
    S1,
    S2,
    S3,
    G1,
    M1,
}

impl RuleId {
    /// All rules, in catalogue order.
    pub const ALL: [RuleId; 11] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::S1,
        RuleId::S2,
        RuleId::S3,
        RuleId::G1,
        RuleId::M1,
    ];

    /// Short ID as printed in diagnostics and allowlists.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::C3 => "C3",
            RuleId::S1 => "S1",
            RuleId::S2 => "S2",
            RuleId::S3 => "S3",
            RuleId::G1 => "G1",
            RuleId::M1 => "M1",
        }
    }

    /// Human slug used in suppression comments: `// lint: <slug>-ok (…)`.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::D1 => "nondeterministic-iteration",
            RuleId::D2 => "nondeterministic-source",
            RuleId::D3 => "float-reduction",
            RuleId::C1 => "channel-protocol",
            RuleId::C2 => "unwind-across-pool",
            RuleId::C3 => "order-sensitive-reduction",
            RuleId::S1 => "undocumented-unsafe",
            RuleId::S2 => "library-panic",
            RuleId::S3 => "truncating-cast",
            RuleId::G1 => "contract-root",
            RuleId::M1 => "unregistered-metric",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "iteration over HashMap/HashSet/FxHashMap/FxHashSet in a deterministic crate; \
                 route through a sorted-iteration helper (fxhash::sorted_*) or annotate"
            }
            RuleId::D2 => {
                "wall-clock/entropy/thread-identity source (SystemTime::now, Instant::now, \
                 thread::current, thread_rng, from_entropy) outside bench/criterion"
            }
            RuleId::D3 => {
                "float partial-order hazard: partial_cmp().unwrap()/expect() comparators \
                 (use total_cmp or handle None)"
            }
            RuleId::C1 => {
                "channel-protocol breach: `.send(…)` in deterministic code without a \
                 batch-position tag tuple `((tag, …))`, or `.recv()` outside the blessed \
                 pool API (crates/sim/src/pool.rs)"
            }
            RuleId::C2 => {
                "panic path dispatched onto the WorkerPool: unwrap/expect/panic! reachable \
                 from a worker fn (and unchecked indexing in the worker body itself) with no \
                 catch_unwind — a worker panic poisons determinism silently"
            }
            RuleId::C3 => {
                "order-sensitive reduction in contract-reachable code: float sum/fold or \
                 reduce/min_by/max_by — use the sequential helpers (sum_seq) or the blessed \
                 fixed-order combining loop (shard::combine_winners)"
            }
            RuleId::S1 => "`unsafe` without a `// SAFETY:` comment in the preceding three lines",
            RuleId::S2 => "unwrap()/expect()/panic! in deterministic-crate library code",
            RuleId::S3 => {
                "truncating `as u32` cast in borg-query library code; use cast::code32 / \
                 u32::try_from"
            }
            RuleId::G1 => {
                "a graph::CONTRACT_ROOTS entry names a function its file no longer defines; \
                 update the root table so the contract scope cannot silently shrink"
            }
            RuleId::M1 => {
                "a latency/duration/timing declaration typed as a raw Vec/VecDeque sample \
                 buffer; record into a registered telemetry::Histogram so quantiles, \
                 snapshots, and exports see the metric"
            }
        }
    }
}

/// One finding: file, 1-based line, rule, free-text message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl Diagnostic {
    /// Renders in the `file:line: ID slug: message` shape check.sh greps.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }
}

/// A `// lint: <marker>-ok (…)` comment whose site no longer triggers
/// the rule it names — the reason has rotted and the comment must go.
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    pub file: String,
    pub line: u32,
    /// The marker as written, `-ok` stripped (a slug or a rule ID).
    pub marker: String,
    /// False when the marker names no rule in the catalogue at all.
    pub known: bool,
}

impl UnusedSuppression {
    pub fn render(&self) -> String {
        if self.known {
            format!(
                "{}:{}: unused suppression `{}-ok` (site no longer triggers the rule; delete it)",
                self.file, self.line, self.marker
            )
        } else {
            format!(
                "{}:{}: unknown suppression marker `{}-ok` (no such rule; typo?)",
                self.file, self.line, self.marker
            )
        }
    }
}

/// Hash-container type names whose iteration order is arbitrary.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods on those containers that yield (or consume in) arbitrary
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Iterator reductions whose winner depends on visit order when scores
/// tie (or on float associativity): in contract-reachable code,
/// per-shard results must flow through the blessed fixed-order
/// combining loop (`shard::combine_winners`) instead.
const ORDER_SENSITIVE_REDUCERS: &[&str] =
    &["reduce", "min_by", "max_by", "min_by_key", "max_by_key"];

/// Blessed wall-clock helpers: the only non-bench library files allowed
/// the D2 time/entropy sources. Telemetry's timing plane routes every
/// duration through `telemetry::clock::now_ns`, which keeps wall-clock
/// reads auditable at one site instead of suppressed ad hoc (DESIGN.md
/// §12); the values it yields are confined to the timing plane and
/// excluded from every determinism contract.
const D2_BLESSED_FILES: &[&str] = &["crates/telemetry/src/clock.rs"];

/// The only files allowed to call `.recv()`/`.try_recv()` on a
/// channel: the pool APIs restore result attribution behind these
/// boundaries (C1) — batch order in the sim pool, id-tagged streaming
/// results in the serve pool.
const BLESSED_POOL_FILES: &[&str] = &["crates/sim/src/pool.rs", "crates/serve/src/pool.rs"];

/// Everything the workspace pipeline hands a per-file rule run.
pub(crate) struct FileInput<'a> {
    pub rel: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [(u32, String)],
    pub in_test: &'a [bool],
    pub fc: &'a FileClass,
    pub scope: &'a FileScope,
}

/// Per-file rule output: findings plus rotted suppressions.
pub(crate) struct FileOutcome {
    pub diags: Vec<Diagnostic>,
    pub unused: Vec<UnusedSuppression>,
}

/// Runs every applicable rule over one prepared file, accumulating
/// per-rule wall time into `timings`.
pub(crate) fn lint_tokens(input: &FileInput, timings: &mut Timings) -> FileOutcome {
    let fc = input.fc;
    let mut ctx = Ctx {
        rel: input.rel,
        toks: input.toks,
        comments: input.comments,
        in_test: input.in_test,
        scope: input.scope,
        out: Vec::new(),
        used: Vec::new(),
    };

    let deterministic_lib = fc.deterministic && fc.target == Target::Lib;
    let mut run = |id: RuleId, on: bool, ctx: &mut Ctx, f: fn(&mut Ctx)| {
        if !on {
            return;
        }
        let t0 = Instant::now();
        f(ctx);
        timings.add(id.id(), t0.elapsed().as_secs_f64() * 1e3);
    };
    run(RuleId::D1, deterministic_lib, &mut ctx, rule_d1);
    run(
        RuleId::D2,
        !matches!(fc.krate.as_str(), "criterion" | "bench")
            && matches!(fc.target, Target::Lib | Target::Bin)
            && !D2_BLESSED_FILES.contains(&input.rel),
        &mut ctx,
        rule_d2,
    );
    run(RuleId::D3, deterministic_lib, &mut ctx, rule_d3);
    run(RuleId::C1, deterministic_lib, &mut ctx, rule_c1);
    run(
        RuleId::C2,
        !input.scope.pool.is_empty() || !input.scope.opaque_pool_workers.is_empty(),
        &mut ctx,
        rule_c2,
    );
    run(
        RuleId::C3,
        deterministic_lib && !input.scope.contract.is_empty(),
        &mut ctx,
        rule_c3,
    );
    run(RuleId::S1, true, &mut ctx, rule_s1);
    run(RuleId::S2, deterministic_lib, &mut ctx, rule_s2);
    run(
        RuleId::S3,
        fc.krate == "query" && fc.target == Target::Lib,
        &mut ctx,
        rule_s3,
    );
    // telemetry is exempt: it *implements* the registry the rule
    // routes everyone else toward.
    run(
        RuleId::M1,
        deterministic_lib && fc.krate != "telemetry",
        &mut ctx,
        rule_m1,
    );

    ctx.out.sort_by_key(|d| (d.line, d.rule));
    let unused = unused_suppressions(&ctx);
    FileOutcome {
        diags: ctx.out,
        unused,
    }
}

/// Shared per-file state threaded through the rule passes.
struct Ctx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    comments: &'a [(u32, String)],
    in_test: &'a [bool],
    scope: &'a FileScope,
    out: Vec<Diagnostic>,
    /// `(comment_line, rule)` pairs whose suppression absorbed a
    /// finding — everything else carrying a marker is *unused*.
    used: Vec<(u32, RuleId)>,
}

impl Ctx<'_> {
    /// Emits unless a `// lint: <slug|ID>-ok (reason)` comment covers
    /// `line` (same line or the line above, reason required); a
    /// consumed suppression is recorded so rotted ones can be reported.
    fn emit(&mut self, line: u32, rule: RuleId, message: String) {
        if let Some(comment_line) = self.suppression_line(line, rule) {
            self.used.push((comment_line, rule));
            return;
        }
        self.out.push(Diagnostic {
            file: self.rel.to_string(),
            line,
            rule,
            message,
        });
    }

    fn suppression_line(&self, line: u32, rule: RuleId) -> Option<u32> {
        self.comments
            .iter()
            .filter(|(l, _)| *l == line || *l + 1 == line)
            .find(|(_, text)| has_suppression(text, rule))
            .map(|(l, _)| *l)
    }

    /// True when a `// SAFETY:` comment sits on `line` or within the
    /// three lines above it.
    fn has_safety_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .filter(|(l, _)| *l <= line && *l + 3 >= line)
            .any(|(_, text)| text.contains("SAFETY:"))
    }
}

/// Parses `lint: <marker>-ok (reason)` out of a comment; the reason
/// must be non-empty. Both the slug and the short ID (any case) work
/// as markers, and one comment may carry several markers.
fn has_suppression(comment: &str, rule: RuleId) -> bool {
    let lower = comment.to_ascii_lowercase();
    let Some(pos) = lower.find("lint:") else {
        return false;
    };
    let body = &lower[pos + "lint:".len()..];
    for marker in [rule.slug().to_string(), rule.id().to_ascii_lowercase()] {
        let needle = format!("{marker}-ok");
        let mut search = body;
        while let Some(at) = search.find(&needle) {
            // Reject partial-word hits: `float-reduction-ok` must not
            // satisfy a lookup for `reduction-ok`.
            let clean_start = at == 0
                || !search[..at]
                    .ends_with(|c: char| c.is_ascii_alphanumeric() || c == '-' || c == '_');
            let after = search[at + needle.len()..].trim_start();
            if clean_start {
                if let Some(rest) = after.strip_prefix('(') {
                    if let Some(close) = rest.find(')') {
                        if !rest[..close].trim().is_empty() {
                            return true;
                        }
                    }
                }
            }
            search = &search[at + needle.len()..];
        }
    }
    false
}

/// Every `<marker>-ok` token after a `lint:` prefix, marker text with
/// the `-ok` stripped. Used for unused/unknown-marker reporting.
pub(crate) fn suppression_markers(comment: &str) -> Vec<String> {
    let lower = comment.to_ascii_lowercase();
    let Some(pos) = lower.find("lint:") else {
        return Vec::new();
    };
    let body = &lower[pos + "lint:".len()..];
    let mut out = Vec::new();
    // Split into maximal marker-character words, keep those ending -ok.
    for word in body.split(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_')) {
        if let Some(marker) = word.strip_suffix("-ok") {
            if !marker.is_empty() {
                out.push(marker.to_string());
            }
        }
    }
    out
}

/// Reports suppression comments no finding consumed. Comments adjacent
/// to test-region tokens are exempt — rules skip test code entirely, so
/// markers there can never be consumed and are documentation at worst.
fn unused_suppressions(ctx: &Ctx) -> Vec<UnusedSuppression> {
    let mut test_lines: Vec<u32> = ctx
        .toks
        .iter()
        .zip(ctx.in_test)
        .filter(|(_, &t)| t)
        .map(|(tok, _)| tok.line)
        .collect();
    test_lines.sort_unstable();
    test_lines.dedup();
    let near_test =
        |l: u32| (l.saturating_sub(1)..=l + 1).any(|cand| test_lines.binary_search(&cand).is_ok());
    let mut out = Vec::new();
    for (line, text) in ctx.comments {
        for marker in suppression_markers(text) {
            if near_test(*line) {
                continue;
            }
            let rule = RuleId::ALL
                .iter()
                .find(|r| r.slug() == marker || r.id().eq_ignore_ascii_case(&marker));
            match rule {
                Some(&r) => {
                    if !ctx.used.contains(&(*line, r)) {
                        out.push(UnusedSuppression {
                            file: ctx.rel.to_string(),
                            line: *line,
                            marker,
                            known: true,
                        });
                    }
                }
                None => out.push(UnusedSuppression {
                    file: ctx.rel.to_string(),
                    line: *line,
                    marker,
                    known: false,
                }),
            }
        }
    }
    out
}

/// Marks tokens covered by `#[test]`-like or `#[cfg(test)]`-gated
/// items (including the attribute itself). `#[cfg(not(test))]` does
/// not count.
pub(crate) fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && i + 1 < toks.len()
            && toks[i + 1].text == "[")
        {
            i += 1;
            continue;
        }
        // Collect the attribute's idents up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                (TokKind::Ident, "test") => has_test = true,
                (TokKind::Ident, "not") => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut d = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The item body: first top-level `{`..matching `}`, or a `;`.
        let mut bracket = 0isize; // (, [, < are NOT tracked; braces/parens suffice
        let mut end = j;
        while end < toks.len() {
            if toks[end].kind == TokKind::Punct {
                match toks[end].text.as_str() {
                    "(" | "[" => bracket += 1,
                    ")" | "]" => bracket -= 1,
                    ";" if bracket == 0 => break,
                    "{" if bracket == 0 => {
                        let mut braces = 0usize;
                        while end < toks.len() {
                            if toks[end].kind == TokKind::Punct {
                                match toks[end].text.as_str() {
                                    "{" => braces += 1,
                                    "}" => {
                                        braces -= 1;
                                        if braces == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            end += 1;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            end += 1;
        }
        for m in mask
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Where a hash container name was introduced; decides which receiver
/// shapes count as uses of *that* container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeclKind {
    /// `let`-bound local: bare `name.iter()` / `for _ in &name` match.
    Local,
    /// Struct field (or parameter): only `self.name.iter()` matches,
    /// so a same-named local `Vec` does not false-positive.
    Field,
}

/// D1: iteration over hash maps/sets. Tracks names declared with a
/// hash-container type in this file, then flags order-producing method
/// calls and `for … in` loops over them.
fn rule_d1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    let mut names: Vec<(String, DeclKind)> = Vec::new();
    let add = |name: &str, kind: DeclKind, names: &mut Vec<(String, DeclKind)>| {
        if !names.iter().any(|(n, k)| n == name && *k == kind) {
            names.push((name.to_string(), kind));
        }
    };

    // Pass 1: declarations. Two shapes:
    //   `name: [path::]MapType<…>`          (field, param, or typed let)
    //   `[let [mut]] name = MapType::ctor(` (inferred let)
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !MAP_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if next == Some("<") {
            // Walk back over a path prefix (`std :: collections ::`).
            let mut k = i;
            while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
                k -= 2;
            }
            if k >= 2 && toks[k - 1].text == ":" && toks[k - 2].kind == TokKind::Ident {
                let name_idx = k - 2;
                let mut kind = DeclKind::Field;
                let lookback = name_idx.saturating_sub(2);
                if toks[lookback..name_idx].iter().any(|t| t.text == "let") {
                    kind = DeclKind::Local;
                }
                let name = toks[name_idx].text.clone();
                add(&name, kind, &mut names);
            }
        } else if next == Some("::")
            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident)
            && i >= 2
            && toks[i - 1].text == "="
            && toks[i - 2].kind == TokKind::Ident
        {
            let name_idx = i - 2;
            let lookback = name_idx.saturating_sub(2);
            if toks[lookback..name_idx].iter().any(|t| t.text == "let") {
                let name = toks[name_idx].text.clone();
                add(&name, DeclKind::Local, &mut names);
            }
        }
    }
    if names.is_empty() {
        return;
    }
    let kind_of = |name: &str, field: bool| -> Option<DeclKind> {
        let want = if field {
            DeclKind::Field
        } else {
            DeclKind::Local
        };
        names
            .iter()
            .find(|(n, k)| n == name && *k == want)
            .map(|(_, k)| *k)
    };

    // Pass 2: uses.
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];

        // `recv.name.iter()` / `name.iter()` method-call shape.
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks[i - 2].kind == TokKind::Ident
        {
            let recv = &toks[i - 2];
            let via_self = i >= 4 && toks[i - 3].text == "." && toks[i - 4].text == "self";
            let hit = kind_of(&recv.text, via_self).is_some()
                // A bare local is `name.iter()` with nothing (or non-dot)
                // before it.
                && (via_self || i < 4 || toks[i - 3].text != ".");
            if hit {
                let method = t.text.clone();
                let name = recv.text.clone();
                ctx.emit(
                    t.line,
                    RuleId::D1,
                    format!(
                        "`{name}.{method}()` iterates a hash container in arbitrary order; \
                         collect+sort via fxhash::sorted_* (or switch to BTreeMap) or annotate \
                         `// lint: nondeterministic-iteration-ok (reason)`"
                    ),
                );
            }
        }

        // `for pat in [&[mut]] [self.]name {` loop shape.
        if t.text == "for" {
            // Find `in` before the loop body opens.
            let mut j = i + 1;
            let mut depth = 0isize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "in" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || toks[j].text != "in" {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
                k += 1;
            }
            let via_self = toks.get(k).map(|t| t.text.as_str()) == Some("self")
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some(".");
            if via_self {
                k += 2;
            }
            let (Some(name_tok), Some(open)) = (toks.get(k), toks.get(k + 1)) else {
                continue;
            };
            if name_tok.kind == TokKind::Ident
                && open.text == "{"
                && kind_of(&name_tok.text, via_self).is_some()
            {
                let name = name_tok.text.clone();
                ctx.emit(
                    name_tok.line,
                    RuleId::D1,
                    format!(
                        "`for … in {name}` iterates a hash container in arbitrary order; \
                         collect+sort via fxhash::sorted_* (or switch to BTreeMap) or annotate \
                         `// lint: nondeterministic-iteration-ok (reason)`"
                    ),
                );
            }
        }
    }
}

/// D2: ambient nondeterminism sources.
fn rule_d2(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let path_call = |head: &str, tail: &str| {
            toks[i].text == head
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some(tail)
        };
        let found: Option<&str> = if path_call("SystemTime", "now") {
            Some("SystemTime::now")
        } else if path_call("Instant", "now") {
            Some("Instant::now")
        } else if path_call("thread", "current") {
            Some("thread::current")
        } else if path_call("RandomState", "new") {
            Some("RandomState::new")
        } else if toks[i].text == "thread_rng" || toks[i].text == "from_entropy" {
            Some(if toks[i].text == "thread_rng" {
                "thread_rng"
            } else {
                "from_entropy"
            })
        } else {
            None
        };
        if let Some(src) = found {
            ctx.emit(
                toks[i].line,
                RuleId::D2,
                format!(
                    "`{src}` injects wall-clock/entropy/thread identity into a reproducible \
                     path; thread config/seeds through explicitly or annotate \
                     `// lint: nondeterministic-source-ok (reason)`"
                ),
            );
        }
    }
}

/// D3: `partial_cmp(…).unwrap()/.expect(…)` — a partial order treated
/// as total. (Re-associable float reductions are C3's job, scoped by
/// contract reachability rather than a file list.)
fn rule_d3(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        if t.text == "partial_cmp" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            // Skip to the matching `)` and look for `.unwrap(`/`.expect(`.
            let mut depth = 0isize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let unwrapped = toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
                && matches!(
                    toks.get(j + 2).map(|t| t.text.as_str()),
                    Some("unwrap") | Some("expect")
                );
            if unwrapped {
                ctx.emit(
                    t.line,
                    RuleId::D3,
                    "`partial_cmp().unwrap()` treats a partial order as total and panics on \
                     NaN; use `total_cmp` (or handle the None arm explicitly, e.g. \
                     `unwrap_or(Ordering::Equal)` where IEEE tie semantics are load-bearing)"
                        .to_string(),
                );
            }
        }
    }
}

/// C1: channel protocol. Every `.send(…)` in deterministic library
/// code must carry a batch-position tag tuple (`send((tag, payload))`)
/// so the receiving side can restore submission order; `.recv()` and
/// friends belong behind the blessed pool API only.
fn rule_c1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let method_call = i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        if !method_call {
            continue;
        }
        if t.text == "send" && toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
            ctx.emit(
                t.line,
                RuleId::C1,
                "`.send(…)` without a batch-position tag: the pool protocol sends \
                 `((tag, payload))` tuples so the receiver can restore submission order; \
                 tag the message or annotate `// lint: channel-protocol-ok (reason)`"
                    .to_string(),
            );
        }
        if matches!(t.text.as_str(), "recv" | "try_recv" | "recv_timeout")
            && !BLESSED_POOL_FILES.contains(&ctx.rel)
        {
            let what = t.text.clone();
            ctx.emit(
                t.line,
                RuleId::C1,
                format!(
                    "bare `.{what}()` outside the blessed pool APIs \
                     ({}): consume results through the pool API so result attribution \
                     is restored, or annotate `// lint: channel-protocol-ok (reason)`",
                    BLESSED_POOL_FILES.join(", ")
                ),
            );
        }
    }
}

/// Identifier-like tokens that precede `[` without forming an index
/// expression (`for x in [..]`, `match x { .. }` arms, casts).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "in", "return", "break", "as", "else", "match", "loop", "move", "mut", "ref", "static",
    "const", "let", "if", "while",
];

/// C2: panic paths dispatched onto the `WorkerPool`. In any function
/// transitively reachable from a pool worker fn: no `unwrap`/`expect`/
/// `panic!` (the unwind crosses the pool boundary and poisons the
/// batch-order protocol silently). In the worker fn's own body,
/// unchecked indexing is flagged too — it is the direct dispatch
/// surface. A reachable span containing `catch_unwind` is exempt: the
/// unwind is contained.
fn rule_c2(ctx: &mut Ctx) {
    // The pool implementations are the boundary itself: their panic
    // sites are the protocol's own caller-thread re-raises (each
    // already S2 reason-suppressed), not payload code dispatched onto
    // workers.
    if BLESSED_POOL_FILES.contains(&ctx.rel) {
        return;
    }
    let toks = ctx.toks;
    let catch_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "catch_unwind")
        .map(|t| t.line)
        .collect();
    let guarded = |line: u32| {
        ctx.scope
            .pool
            .iter()
            .filter(|&&(s, e)| s <= line && line <= e)
            .any(|&(s, e)| catch_lines.iter().any(|&cl| s <= cl && cl <= e))
    };
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        let line = t.line;
        if t.kind == TokKind::Ident && ctx.scope.in_pool(line) && !guarded(line) {
            let method_call = |name: &str| {
                t.text == name
                    && i >= 1
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            };
            if method_call("unwrap") || method_call("expect") {
                let what = t.text.clone();
                ctx.emit(
                    line,
                    RuleId::C2,
                    format!(
                        "`.{what}()` in code dispatched onto the WorkerPool \
                         (borg-lint --explain shows the chain): a worker panic unwinds across \
                         the pool and poisons determinism silently; return an error, contain \
                         it with catch_unwind, or annotate \
                         `// lint: unwind-across-pool-ok (reason)`"
                    ),
                );
            }
            if t.text == "panic" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") {
                ctx.emit(
                    line,
                    RuleId::C2,
                    "`panic!` in code dispatched onto the WorkerPool (borg-lint --explain \
                     shows the chain): the unwind crosses the pool boundary; return an error, \
                     contain it with catch_unwind, or annotate \
                     `// lint: unwind-across-pool-ok (reason)`"
                        .to_string(),
                );
            }
        }
        // Unchecked indexing, worker bodies only (the direct dispatch
        // surface): `recv[`, `f()[`, `xs][`-chains.
        if t.kind == TokKind::Punct
            && t.text == "["
            && ctx.scope.in_pool_direct(line)
            && !guarded(line)
            && i >= 1
        {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text.as_str()),
                TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                _ => false,
            };
            if indexes {
                ctx.emit(
                    line,
                    RuleId::C2,
                    "unchecked indexing in a WorkerPool worker body panics across the pool \
                     on a bad index; use .get() and handle None, or annotate \
                     `// lint: unwind-across-pool-ok (reason)`"
                        .to_string(),
                );
            }
        }
    }
    for &line in &ctx.scope.opaque_pool_workers {
        ctx.emit(
            line,
            RuleId::C2,
            "WorkerPool::new with a worker that is not a named `fn` (closure or unresolved \
             path): the lint cannot police what runs on the pool; dispatch a named function \
             (`name as fn(J) -> R`) or annotate `// lint: unwind-across-pool-ok (reason)`"
                .to_string(),
        );
    }
}

/// C3: order-sensitive reductions in contract-reachable code —
/// re-associable float accumulation (`.sum::<f64>()`, float `fold`)
/// and tie-unstable winners (`reduce`/`min_by`/`max_by`/…). This is
/// the graph-scoped generalization of the old `BIT_IDENTITY_FILES`
/// list: scope is computed from [`crate::graph::CONTRACT_ROOTS`].
fn rule_c3(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        if !ctx.scope.in_contract(t.line) {
            continue;
        }
        if t.text == "sum"
            && toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) == Some(".")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("<")
            && matches!(
                toks.get(i + 3).map(|t| t.text.as_str()),
                Some("f64") | Some("f32")
            )
        {
            ctx.emit(
                t.line,
                RuleId::C3,
                "float `.sum()` in contract-reachable code (borg-lint --explain shows the \
                 chain): re-associating this reduction changes results; use the blessed \
                 sequential helper (sum_seq) or annotate \
                 `// lint: order-sensitive-reduction-ok (reason)`"
                    .to_string(),
            );
        }
        if t.text == "fold" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            if let Some(seed) = toks.get(i + 2) {
                let is_float = seed.kind == TokKind::Num
                    && (seed.text.contains('.')
                        || seed.text.ends_with("f32")
                        || seed.text.ends_with("f64"));
                if is_float {
                    ctx.emit(
                        t.line,
                        RuleId::C3,
                        "float `fold` in contract-reachable code (borg-lint --explain shows \
                         the chain): re-associating this reduction changes results; use the \
                         blessed sequential helper (sum_seq) or annotate \
                         `// lint: order-sensitive-reduction-ok (reason)`"
                            .to_string(),
                    );
                }
            }
        }
        if ORDER_SENSITIVE_REDUCERS.contains(&t.text.as_str())
            && toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) == Some(".")
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            ctx.emit(
                t.line,
                RuleId::C3,
                format!(
                    "`.{}()` in contract-reachable code (borg-lint --explain shows the \
                     chain): an unordered reduction breaks the winner when scores tie; \
                     combine per-shard results through the blessed fixed-order loop \
                     (shard::combine_winners) or annotate \
                     `// lint: order-sensitive-reduction-ok (reason)`",
                    t.text
                ),
            );
        }
    }
}

/// S1: every `unsafe` needs a `// SAFETY:` comment within three lines.
fn rule_s1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe` inside an attr (`#[allow(unsafe_code)]`) is not a
        // block; require the next meaningful token to open something.
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if !matches!(next, Some("{") | Some("fn") | Some("impl") | Some("trait")) {
            continue;
        }
        if !ctx.has_safety_comment(t.line) {
            ctx.emit(
                t.line,
                RuleId::S1,
                "`unsafe` without a `// SAFETY:` comment in the preceding three lines; \
                 document the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// S2: no unwrap/expect/panic! in deterministic-crate library code.
fn rule_s2(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        };
        if method_call("unwrap") || method_call("expect") {
            let what = t.text.clone();
            ctx.emit(
                t.line,
                RuleId::S2,
                format!(
                    "`.{what}()` in library code can panic at runtime; return an error, \
                     restructure so the invariant is type-checked, or annotate \
                     `// lint: library-panic-ok (reason)`"
                ),
            );
        }
        if t.text == "panic" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") {
            ctx.emit(
                t.line,
                RuleId::S2,
                "`panic!` in library code; return an error or annotate \
                 `// lint: library-panic-ok (reason)`"
                    .to_string(),
            );
        }
    }
}

/// Identifier hints marking a latency/duration metric declaration.
const M1_HINTS: &[&str] = &["latenc", "duration", "timing"];

/// M1: latency metrics hoarded as raw sample vectors. A field, local,
/// or parameter whose name says "latency/duration/timing" but whose
/// type is a `Vec`/`VecDeque` keeps every sample outside the metrics
/// registry: quantiles get recomputed ad hoc, memory grows with the
/// run, and the metric never reaches snapshot/export. Record into a
/// `telemetry::Histogram` (registered through `telemetry::registry`)
/// instead. Names containing "samples" are exempt — an explicit sample
/// buffer (e.g. a CCDF input) is the declared intent, not a metric.
fn rule_m1(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.to_ascii_lowercase();
        if !M1_HINTS.iter().any(|h| name.contains(h)) || name.contains("samples") {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some(":") {
            continue;
        }
        // Scan a few tokens of the declared type for Vec/VecDeque<…>,
        // passing through array syntax (`[Vec<u64>; 3]`) but stopping
        // where the declaration ends.
        let mut hit: Option<(u32, String)> = None;
        for j in (i + 2)..toks.len().min(i + 8) {
            let t = &toks[j];
            match t.text.as_str() {
                "Vec" | "VecDeque" if toks.get(j + 1).map(|t| t.text.as_str()) == Some("<") => {
                    hit = Some((t.line, t.text.clone()));
                    break;
                }
                "," | ";" | ")" | "{" | "}" | "=" => break,
                _ => {}
            }
        }
        if let Some((line, ty)) = hit {
            let ident = toks[i].text.clone();
            ctx.emit(
                line,
                RuleId::M1,
                format!(
                    "`{ident}: {ty}<…>` hoards raw samples outside the metrics registry; \
                     record into a registered `telemetry::Histogram` so quantiles, \
                     snapshots, and exports see the metric, or annotate \
                     `// lint: unregistered-metric-ok (reason)`"
                ),
            );
        }
    }
}

/// S3: truncating `as u32` in borg-query library code.
fn rule_s3(ctx: &mut Ctx) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || toks[i].kind != TokKind::Ident || toks[i].text != "as" {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("u32") {
            ctx.emit(
                toks[i].line,
                RuleId::S3,
                "`as u32` silently truncates row counts/dictionary codes past 2^32; use \
                 cast::code32 (checked) or annotate `// lint: truncating-cast-ok (reason)`"
                    .to_string(),
            );
        }
    }
}
