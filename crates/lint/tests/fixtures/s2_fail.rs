//! S2 failing fixture: ad-hoc panics in library code.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn named(xs: &[u64]) -> u64 {
    *xs.first().expect("non-empty")
}

pub fn guarded(x: u64) -> u64 {
    if x == 0 {
        panic!("zero not allowed");
    }
    x
}
