//! D3 passing fixture: per-shard winners combined through an explicit
//! fixed-order loop (the `shard::combine_winners` shape), with the
//! order-sensitive shortcut allowed only behind an annotation.

fn combine_winners(per_shard: &[Option<(usize, f64)>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for cand in per_shard {
        let Some((mi, score)) = *cand else { continue };
        let better = match best {
            None => true,
            Some((best_mi, best_score)) => {
                score < best_score || (score == best_score && mi < best_mi)
            }
        };
        if better {
            best = Some((mi, score));
        }
    }
    best
}

pub fn combine(winners: &[Option<(usize, f64)>]) -> Option<(usize, f64)> {
    combine_winners(winners)
}

pub fn busiest_shard(loads: &[u64]) -> Option<u64> {
    // lint: float-reduction-ok (u64 key has no ties by construction; checked in tests)
    loads.iter().copied().max_by_key(|&l| l)
}
