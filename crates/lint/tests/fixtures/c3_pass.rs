//! C3 passing fixture: the contract root reduces through a blessed
//! sequential helper; the order-sensitive shortcut is allowed only
//! behind an annotation; and a hazard in an *unreached* helper is out
//! of contract scope by construction.

pub fn map_blocks(xs: &[f64]) -> f64 {
    sum_seq(xs.iter().copied()) + fast_total(xs)
}

fn sum_seq(it: impl Iterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for x in it {
        acc += x;
    }
    acc
}

fn fast_total(xs: &[f64]) -> f64 {
    // lint: order-sensitive-reduction-ok (tolerance-checked against sum_seq in tests)
    xs.iter().sum::<f64>()
}

pub fn off_contract(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
