//! D2 failing fixture: ambient time and thread identity.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = t.elapsed();
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_nanos(),
        Err(_) => 0,
    }
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
