//! S2 passing fixture: errors surface as values; the one deliberate
//! panic carries its justification; tests may unwrap freely.

pub fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn head_invariant(xs: &[u64]) -> u64 {
    // lint: library-panic-ok (callers construct xs non-empty; checked at the two call sites)
    *xs.first().expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(head(&[7]).unwrap(), 7);
        let parsed: u64 = "42".parse().expect("tests may expect");
        assert_eq!(parsed, 42);
    }
}
