//! S3 failing fixture: silent narrowing of a row count.

pub fn encode_rows(num_rows: usize) -> Vec<u32> {
    (0..num_rows as u32).collect()
}
