//! D1 passing fixture: iteration routed through a sorted-snapshot
//! helper, or annotated where order provably cannot leak.
use std::collections::HashMap;

fn sorted_entries(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    // lint: nondeterministic-iteration-ok (sorted before being observed)
    let mut v: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort_unstable();
    v
}

pub struct Metrics {
    by_job: HashMap<u64, u64>,
}

impl Metrics {
    pub fn report(&self) -> Vec<(u64, u64)> {
        sorted_entries(&self.by_job)
    }

    pub fn total(&self) -> u64 {
        // lint: nondeterministic-iteration-ok (integer sum is order-independent)
        self.by_job.values().sum()
    }
}
