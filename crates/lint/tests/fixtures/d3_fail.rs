//! D3 failing fixture (linted under a bit-identity path): partial-order
//! float compares and re-associable reductions.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn total_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}
