//! D3 failing fixture: a partial-order float compare treated as total —
//! `partial_cmp().unwrap()` panics on NaN and hides the partiality.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn pick(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("comparable")
}
