//! D2 passing fixture: explicit seeds/config; wall clock only behind an
//! annotation that explains why results cannot depend on it.
use std::time::Instant;

pub fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub fn log_progress(done: usize, total: usize) -> f64 {
    // lint: nondeterministic-source-ok (progress display only; no result depends on it)
    let t = Instant::now();
    let _ = (done, total);
    t.elapsed().as_secs_f64()
}
