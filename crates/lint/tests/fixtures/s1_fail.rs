//! S1 failing fixture: `unsafe` without a SAFETY comment.

pub fn first_unchecked(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
