//! S3 passing fixture: narrowing routes through a checked helper; a
//! deliberate low-bits extraction is annotated.

fn code32(n: usize) -> u32 {
    match u32::try_from(n) {
        Ok(code) => code,
        // lint: library-panic-ok (engine capacity limit, panics loudly instead of wrapping)
        Err(_) => panic!("row/code space exceeded: {n}"),
    }
}

pub fn encode_rows(num_rows: usize) -> Vec<u32> {
    (0..code32(num_rows)).collect()
}

pub fn low_bits(x: u64) -> u32 {
    (x & 0xffff_ffff) as u32 // lint: truncating-cast-ok (intentional low-32 extraction)
}
