//! C3 failing fixture (linted as `crates/query/src/parallel.rs`): the
//! `map_blocks` contract root reaches helpers that re-associate float
//! reductions and pick winners with order-sensitive reducers. The
//! `unreached` helper carries the same hazard but is NOT called from
//! the root — it must stay out of scope, proving C3 is graph-scoped
//! rather than file-scoped.

pub fn map_blocks(xs: &[f64]) -> f64 {
    total(xs) + total_fold(xs) + best(xs).unwrap_or(0.0)
}

fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn total_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(|a, b| a.total_cmp(b))
}

pub fn unreached(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
