//! D1 failing fixture: hash-container iteration feeding output order.
use std::collections::HashMap;

pub struct Metrics {
    by_job: HashMap<u64, u64>,
}

impl Metrics {
    pub fn report(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (k, v) in self.by_job.iter() {
            out.push((*k, *v));
        }
        out
    }
}

pub fn histogram(xs: &[u64]) -> Vec<u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for kv in &counts {
        out.push(*kv.1);
    }
    out
}
