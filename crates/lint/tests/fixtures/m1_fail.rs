//! M1 failing fixture: latency metrics hoarded as raw sample vectors —
//! one plain `Vec` field, one per-tier array of `VecDeque`s.

pub struct Stats {
    pub latency_us: Vec<u64>,
    pub dispatch_timing: [VecDeque<u64>; 3],
}

pub fn quantile(stats: &Stats, q: f64) -> u64 {
    let idx = ((stats.latency_us.len() as f64 - 1.0) * q) as usize;
    stats.latency_us.get(idx).copied().unwrap_or(0)
}
