//! C3 failing fixture (linted as `crates/sim/src/shard.rs`): both
//! `ShardedPlacement` contract roots reach order-sensitive reducers —
//! the per-shard winner combine uses `min_by`/`reduce`/`max_by_key`,
//! whose result depends on shard arrival order under ties.

pub struct ShardedPlacement {
    loads: Vec<f64>,
}

impl ShardedPlacement {
    pub fn best_fit(&self, shards: &[Vec<f64>]) -> Option<f64> {
        shards
            .iter()
            .filter_map(|s| pick_shard_winner(s))
            .min_by(|a, b| a.total_cmp(b))
    }

    pub fn first_preemptible(&self, shards: &[Vec<f64>]) -> Option<f64> {
        shards
            .iter()
            .filter_map(|s| pick_shard_winner(s))
            .reduce(f64::min)
    }
}

fn pick_shard_winner(scores: &[f64]) -> Option<f64> {
    scores
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|(i, _)| *i)
        .map(|(_, s)| s)
}
