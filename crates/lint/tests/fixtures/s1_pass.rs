//! S1 passing fixture: the invariant making the block sound is written
//! down where the `unsafe` is.

pub fn first_checked(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
