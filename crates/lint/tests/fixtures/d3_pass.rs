//! D3 passing fixture: total-order compares; sequential reduction via a
//! blessed helper; re-association allowed only behind an annotation.

fn sum_seq(it: impl Iterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for x in it {
        acc += x;
    }
    acc
}

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn total(xs: &[f64]) -> f64 {
    sum_seq(xs.iter().copied())
}

pub fn fast_total(xs: &[f64]) -> f64 {
    // lint: float-reduction-ok (tolerance-checked against sum_seq in tests)
    xs.iter().sum::<f64>()
}
