//! D3 passing fixture: total-order compares, or the None arm handled
//! explicitly.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn pick(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
