//! M1 passing fixture: the metric records into registered histograms;
//! a deliberate raw buffer is annotated with its reason, and explicit
//! sample buffers (CCDF inputs) are out of scope by name.

pub struct Stats {
    pub latency_us: [Histogram; 3],
    // lint: unregistered-metric-ok (bounded debug buffer, dropped after the run)
    pub stall_duration_us: Vec<u64>,
    pub latency_samples: Vec<u64>,
}

pub fn record(stats: &mut Stats, tier: usize, v: u64) {
    if let Some(h) = stats.latency_us.get_mut(tier) {
        h.record(v);
    }
}
