//! C3 passing fixture: the contract roots combine per-shard winners
//! with an explicit fixed-order loop keyed on shard index, so ties
//! break identically regardless of completion order; the one reducer
//! shortcut is annotated with its tie-break argument.

pub struct ShardedPlacement {
    loads: Vec<f64>,
}

impl ShardedPlacement {
    pub fn best_fit(&self, shards: &[Vec<f64>]) -> Option<f64> {
        combine_winners(shards)
    }

    pub fn first_preemptible(&self, shards: &[Vec<f64>]) -> Option<f64> {
        shards
            .iter()
            .enumerate()
            // lint: order-sensitive-reduction-ok (keys are distinct shard indices, so ties are impossible)
            .min_by_key(|(i, _)| *i)
            .and_then(|(_, s)| s.first().copied())
    }
}

fn combine_winners(shards: &[Vec<f64>]) -> Option<f64> {
    let mut best: Option<f64> = None;
    for s in shards {
        for &x in s {
            best = Some(match best {
                Some(b) if b.total_cmp(&x).is_le() => b,
                _ => x,
            });
        }
    }
    best
}
