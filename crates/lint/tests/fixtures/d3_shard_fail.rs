//! D3 failing fixture (linted under a bit-identity path): unordered
//! iterator reductions over per-shard placement winners. When two
//! shards tie on score, the winner depends on visit order — exactly
//! the nondeterminism the blessed fixed-order combining loop exists
//! to prevent.

pub fn combine_min_by(winners: &[(usize, f64)]) -> Option<(usize, f64)> {
    winners.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1))
}

pub fn combine_reduce(winners: Vec<(usize, f64)>) -> Option<(usize, f64)> {
    winners.into_iter().reduce(|a, b| if b.1 < a.1 { b } else { a })
}

pub fn worst_shard(loads: &[u64]) -> Option<u64> {
    loads.iter().copied().max_by_key(|&l| l)
}
