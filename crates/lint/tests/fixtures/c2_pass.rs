//! C2 passing fixture: the worker body bounds-checks with `.get()`, and
//! the one residual panic path in a pool-reachable helper is annotated
//! with the invariant that makes it unreachable (dual marker: the site
//! is both a library panic and a pool unwind).

pub struct WorkerPool;

impl WorkerPool {
    pub fn new(_workers: usize, _f: fn(u64) -> u64) -> Self {
        WorkerPool
    }
}

pub fn build() -> WorkerPool {
    WorkerPool::new(4, work as fn(u64) -> u64)
}

fn work(job: u64) -> u64 {
    let table = vec![1u64, 2, 4];
    let base = table.get((job % 3) as usize).copied().unwrap_or(1);
    scale(base)
}

fn scale(x: u64) -> u64 {
    // lint: library-panic-ok (inputs are <= 4 above, so the product fits) unwind-across-pool-ok (same bound holds on workers)
    x.checked_mul(3).expect("bounded")
}
