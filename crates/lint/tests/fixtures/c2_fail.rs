//! C2 failing fixture (linted as a sim library file): a named worker fn
//! dispatched onto a local WorkerPool indexes unchecked in its own body
//! and reaches a helper that unwraps — both panic paths unwind across
//! the pool boundary. The `unreached` helper unwraps too but is not
//! pool-reachable, proving C2 is graph-scoped.

pub struct WorkerPool;

impl WorkerPool {
    pub fn new(_workers: usize, _f: fn(u64) -> u64) -> Self {
        WorkerPool
    }
}

pub fn build() -> WorkerPool {
    WorkerPool::new(4, work as fn(u64) -> u64)
}

fn work(job: u64) -> u64 {
    let table = vec![1u64, 2, 4];
    let base = table[(job % 3) as usize];
    scale(base)
}

fn scale(x: u64) -> u64 {
    x.checked_mul(3).unwrap()
}

pub fn unreached(x: u64) -> u64 {
    x.checked_mul(5).unwrap()
}
