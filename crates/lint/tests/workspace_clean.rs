//! The tier-1 gate: the whole workspace must be lint-clean with no
//! baseline — and no *rotted* annotations either. Every new diagnostic
//! is either a fix or a reviewed, reasoned `// lint: …-ok (…)`
//! annotation; every annotation must still be earning its keep.

use std::path::Path;

use borg_lint::{lint_workspace, Allowlist};

/// The five files the old hand-maintained `BIT_IDENTITY_FILES` list
/// named. The computed contract-reachable set must stay a *strict*
/// superset: everything the list policed, plus everything it silently
/// missed.
const OLD_BIT_IDENTITY_FILES: &[&str] = &[
    "crates/query/src/parallel.rs",
    "crates/query/src/groupby.rs",
    "crates/sim/src/index.rs",
    "crates/sim/src/shard.rs",
    "crates/sim/src/pool.rs",
];

#[test]
fn workspace_has_zero_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &Allowlist::empty()).expect("workspace scan");
    assert!(
        report.diags.is_empty(),
        "borg-lint found {} diagnostic(s):\n{}\nfix them or annotate with \
         `// lint: <rule>-ok (reason)` — see DESIGN.md §10/§15",
        report.diags.len(),
        report
            .diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_has_zero_unused_suppressions() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &Allowlist::empty()).expect("workspace scan");
    assert!(
        report.unused.is_empty(),
        "rotted lint suppressions in-tree (sites no longer fire — delete them):\n{}",
        report
            .unused
            .iter()
            .map(|u| u.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn contract_reach_strictly_covers_the_old_file_list() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &Allowlist::empty()).expect("workspace scan");
    let files = report.contract_files();
    for old in OLD_BIT_IDENTITY_FILES {
        assert!(
            files.contains(old),
            "{old} fell out of the computed contract scope; the graph lost coverage \
             the old BIT_IDENTITY_FILES list had"
        );
    }
    assert!(
        files.len() > OLD_BIT_IDENTITY_FILES.len(),
        "the computed contract scope ({} files) must be a STRICT superset of the old \
         5-file list — the whole point of the call graph is covering what the list missed",
        files.len()
    );
    // Every contract root resolved (missing roots would have surfaced
    // as G1 diagnostics above; this pins the invariant directly too).
    assert!(
        report.graph.missing_roots.is_empty(),
        "unresolved contract roots: {:?}",
        report.graph.missing_roots
    );
    // The WorkerPool dispatch boundary was discovered, so C2 has scope.
    assert!(
        !report.graph.pool_roots.is_empty(),
        "no WorkerPool worker functions found — pool-root discovery broke"
    );
}
