//! The tier-1 gate: the whole workspace must be lint-clean with no
//! baseline. Every new diagnostic is either a fix or a reviewed,
//! reasoned `// lint: …-ok (…)` annotation — never silent drift.

use std::path::Path;

use borg_lint::{lint_workspace, Allowlist};

#[test]
fn workspace_has_zero_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root, &Allowlist::empty()).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "borg-lint found {} diagnostic(s):\n{}\nfix them or annotate with \
         `// lint: <rule>-ok (reason)` — see DESIGN.md §10",
        diags.len(),
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
