//! Call-graph integration tests over synthetic mini-crates: name
//! resolution across blessed crate boundaries, the strictness of the
//! blessed-edge list, test-code exclusion, trait-method dispatch, and
//! workspace-level unused-suppression reporting — everything a
//! single-file fixture cannot exercise.

use borg_lint::{lint_sources, Allowlist, RuleId};

fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect()
}

/// The `CellSim::run_cell` root with a cross-crate call into workload.
const CELL_CALLS_WORKLOAD: &str = "\
pub struct CellSim;

impl CellSim {
    pub fn run_cell(&mut self, xs: &[f64]) -> f64 {
        weigh(xs)
    }
}
";

/// A workload helper carrying an order-sensitive reduction.
const WEIGH_HAZARD: &str = "\
pub fn weigh(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
";

#[test]
fn blessed_cross_crate_edge_extends_the_contract() {
    // sim → workload is a blessed edge, so the workload helper the
    // root calls is policed even though it lives in another crate —
    // the coverage the old hand-named file list structurally lacked.
    let report = lint_sources(
        &ws(&[
            ("crates/sim/src/cell.rs", CELL_CALLS_WORKLOAD),
            ("crates/workload/src/dist.rs", WEIGH_HAZARD),
        ]),
        &Allowlist::empty(),
    );
    let c3: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == RuleId::C3)
        .collect();
    assert_eq!(c3.len(), 1, "diags: {:?}", report.diags);
    assert_eq!(c3[0].file, "crates/workload/src/dist.rs");
    let files = report.contract_files();
    assert!(files.contains(&"crates/sim/src/cell.rs"));
    assert!(files.contains(&"crates/workload/src/dist.rs"));
}

#[test]
fn unblessed_crates_do_not_resolve() {
    // Identical shape, but the helper sits in telemetry — NOT on sim's
    // blessed list. The call does not resolve, the helper stays out of
    // contract scope, and deleting a blessed edge therefore visibly
    // shrinks coverage instead of silently keeping stale reach.
    let report = lint_sources(
        &ws(&[
            ("crates/sim/src/cell.rs", CELL_CALLS_WORKLOAD),
            ("crates/telemetry/src/agg.rs", WEIGH_HAZARD),
        ]),
        &Allowlist::empty(),
    );
    assert!(
        report.diags.is_empty(),
        "telemetry helper must stay unpoliced: {:?}",
        report.diags
    );
    assert!(!report
        .contract_files()
        .contains(&"crates/telemetry/src/agg.rs"));
}

#[test]
fn test_code_neither_defines_nor_shadows_graph_nodes() {
    // A #[cfg(test)] fn shadowing the helper's name must not absorb
    // the call edge (the real helper stays policed), and hazards in
    // test code are never findings.
    let cell = "\
pub struct CellSim;

impl CellSim {
    pub fn run_cell(&mut self, xs: &[f64]) -> f64 {
        weigh(xs)
    }
}

#[cfg(test)]
mod tests {
    pub fn weigh(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>()
    }
}
";
    let report = lint_sources(
        &ws(&[
            ("crates/sim/src/cell.rs", cell),
            ("crates/workload/src/dist.rs", WEIGH_HAZARD),
        ]),
        &Allowlist::empty(),
    );
    let c3: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == RuleId::C3)
        .collect();
    assert_eq!(c3.len(), 1, "diags: {:?}", report.diags);
    assert_eq!(
        c3[0].file, "crates/workload/src/dist.rs",
        "the edge must reach the real helper, not the test shadow"
    );
}

#[test]
fn trait_method_calls_reach_impls() {
    // Method-call resolution is deliberately over-approximate: a
    // `.score()` call from contract scope reaches every in-scope impl
    // of that method name, trait impls included.
    let cell = "\
pub trait Scorer {
    fn score(&self, xs: &[f64]) -> f64;
}

pub struct Weighted;

impl Scorer for Weighted {
    fn score(&self, xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>()
    }
}

pub struct CellSim;

impl CellSim {
    pub fn run_cell(&mut self, xs: &[f64]) -> f64 {
        let s = Weighted;
        s.score(xs)
    }
}
";
    let report = lint_sources(
        &ws(&[("crates/sim/src/cell.rs", cell)]),
        &Allowlist::empty(),
    );
    let c3: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.rule == RuleId::C3)
        .collect();
    assert_eq!(c3.len(), 1, "diags: {:?}", report.diags);
}

#[test]
fn qualified_trait_name_resolves_to_the_impl() {
    // `Scorer::score(&w, xs)` — qualifying through the trait name hits
    // the impl via its trait_qual alias.
    let cell = "\
pub trait Scorer {
    fn score(&self, xs: &[f64]) -> f64;
}

pub struct Weighted;

impl Scorer for Weighted {
    fn score(&self, xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>()
    }
}

pub struct CellSim;

impl CellSim {
    pub fn run_cell(&mut self, xs: &[f64]) -> f64 {
        let w = Weighted;
        Scorer::score(&w, xs)
    }
}
";
    let report = lint_sources(
        &ws(&[("crates/sim/src/cell.rs", cell)]),
        &Allowlist::empty(),
    );
    assert_eq!(
        report.diags.iter().filter(|d| d.rule == RuleId::C3).count(),
        1,
        "diags: {:?}",
        report.diags
    );
}

// --------------------------------------------- unused suppressions

#[test]
fn rotted_suppression_is_reported_workspace_wide() {
    let src = "\
pub fn safe(xs: &[f64]) -> f64 {
    // lint: library-panic-ok (nothing here panics anymore)
    xs.first().copied().unwrap_or(0.0)
}
";
    let report = lint_sources(
        &ws(&[("crates/analysis/src/fixture.rs", src)]),
        &Allowlist::empty(),
    );
    assert!(report.diags.is_empty());
    assert_eq!(report.unused.len(), 1, "unused: {:?}", report.unused);
    let u = &report.unused[0];
    assert_eq!(u.file, "crates/analysis/src/fixture.rs");
    assert_eq!(u.marker, "library-panic");
    assert!(u.known, "library-panic is a real rule slug");
}

#[test]
fn unknown_marker_is_reported_as_unknown() {
    let src = "\
pub fn f() -> u64 {
    // lint: totally-bogus-rule-ok (typo'd slug)
    7
}
";
    let report = lint_sources(
        &ws(&[("crates/analysis/src/fixture.rs", src)]),
        &Allowlist::empty(),
    );
    assert_eq!(report.unused.len(), 1);
    assert!(!report.unused[0].known);
}

#[test]
fn consumed_suppression_is_not_reported() {
    let src = "\
pub fn f(xs: &[u64]) -> u64 {
    // lint: library-panic-ok (caller guarantees non-empty)
    *xs.first().unwrap()
}
";
    let report = lint_sources(
        &ws(&[("crates/analysis/src/fixture.rs", src)]),
        &Allowlist::empty(),
    );
    assert!(report.diags.is_empty());
    assert!(report.unused.is_empty(), "unused: {:?}", report.unused);
}

#[test]
fn one_rotted_marker_on_a_dual_comment_is_still_caught() {
    // Only the S2 half of a dual suppression fires; the C2 half is
    // rotted (nothing pool-reachable here) and must be reported.
    let src = "\
pub fn f(xs: &[u64]) -> u64 {
    // lint: library-panic-ok (caller guarantees non-empty) unwind-across-pool-ok (stale)
    *xs.first().unwrap()
}
";
    let report = lint_sources(
        &ws(&[("crates/analysis/src/fixture.rs", src)]),
        &Allowlist::empty(),
    );
    assert!(report.diags.is_empty());
    assert_eq!(report.unused.len(), 1, "unused: {:?}", report.unused);
    assert_eq!(report.unused[0].marker, "unwind-across-pool");
}

// --------------------------------------------------- report plumbing

#[test]
fn timings_cover_every_stage_and_fired_rule() {
    let report = lint_sources(
        &ws(&[
            ("crates/sim/src/cell.rs", CELL_CALLS_WORKLOAD),
            ("crates/workload/src/dist.rs", WEIGH_HAZARD),
        ]),
        &Allowlist::empty(),
    );
    let keys: Vec<&str> = report
        .timings
        .entries()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    for want in ["lex", "parse", "graph", "C3"] {
        assert!(keys.contains(&want), "missing timing key {want}: {keys:?}");
    }
    assert!(report.total_ms > 0.0);
    assert_eq!(report.n_files, 2);
}
