//! Per-rule fixture tests: every rule ID has a failing and a passing
//! fixture, and mutating a passing fixture (deleting the blessed
//! helper route or the suppression annotation) flips its verdict —
//! proving the rules fire for real rather than vacuously passing.

use borg_lint::{lint_source, RuleId};

/// Paths that put fixtures in the scope each rule polices.
const SIM_LIB: &str = "crates/sim/src/fixture.rs";
const QUERY_LIB: &str = "crates/query/src/fixture.rs";
/// D3's reduction arm only fires in bit-identity contract files.
const CONTRACT: &str = "crates/query/src/parallel.rs";
/// The sharded-placement combining layer is a contract file too.
const SHARD_CONTRACT: &str = "crates/sim/src/shard.rs";
const TRACE_LIB: &str = "crates/trace/src/fixture.rs";
const ANALYSIS_LIB: &str = "crates/analysis/src/fixture.rs";

fn rules_hit(rel: &str, src: &str) -> Vec<RuleId> {
    let mut rules: Vec<RuleId> = lint_source(rel, src).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

fn assert_clean(rel: &str, src: &str) {
    let diags = lint_source(rel, src);
    assert!(
        diags.is_empty(),
        "expected clean fixture, got:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Removes every line carrying a `// lint: …-ok (…)` suppression.
fn strip_suppressions(src: &str) -> String {
    src.lines()
        .filter_map(|l| {
            if l.trim_start().starts_with("// lint:") {
                None // whole-line suppression: drop the line
            } else if let Some(at) = l.find("// lint:") {
                Some(&l[..at]) // trailing suppression: keep the code
            } else {
                Some(l)
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fail_fixture_fires() {
    let hits = rules_hit(SIM_LIB, include_str!("fixtures/d1_fail.rs"));
    assert_eq!(hits, vec![RuleId::D1], "both iteration shapes must flag");
    let count = lint_source(SIM_LIB, include_str!("fixtures/d1_fail.rs")).len();
    assert_eq!(count, 2, "method-call shape and for-loop shape");
}

#[test]
fn d1_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/d1_pass.rs"));
}

#[test]
fn d1_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/d1_pass.rs").replace(
        "sorted_entries(&self.by_job)",
        "self.by_job.iter().map(|(k, v)| (*k, *v)).collect()",
    );
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D1));
}

#[test]
fn d1_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d1_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D1));
}

#[test]
fn d1_out_of_scope_crates_are_exempt() {
    // Non-deterministic crate: free to iterate maps.
    assert_clean(
        "crates/experiments/src/bin/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
    );
    // Tests of deterministic crates too.
    assert_clean(
        "crates/sim/tests/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
    );
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fail_fixture_fires() {
    let hits = rules_hit(SIM_LIB, include_str!("fixtures/d2_fail.rs"));
    assert_eq!(hits, vec![RuleId::D2]);
    let count = lint_source(SIM_LIB, include_str!("fixtures/d2_fail.rs")).len();
    assert_eq!(count, 3, "Instant::now, SystemTime::now, thread::current");
}

#[test]
fn d2_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/d2_pass.rs"));
}

#[test]
fn d2_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d2_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D2));
}

#[test]
fn d2_bench_and_criterion_are_exempt() {
    assert_clean(
        "crates/criterion/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert_clean(
        "crates/bench/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
}

#[test]
fn d2_blessed_telemetry_clock_is_exempt() {
    // The sanctioned wall-clock source: telemetry's timing plane reads
    // `Instant::now()` inside the one blessed file (DESIGN.md §12).
    // Only D2 is waived there — the fixture's other hits still apply,
    // so check rule presence rather than full cleanliness.
    let hits = rules_hit(
        "crates/telemetry/src/clock.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert!(
        !hits.contains(&RuleId::D2),
        "blessed clock file must not flag D2, got {hits:?}"
    );
}

#[test]
fn d2_rest_of_telemetry_crate_still_fails() {
    // A raw `Instant::now()` anywhere else in the (deterministic-scope)
    // telemetry crate keeps firing: the blessing is per-file, not
    // per-crate.
    let hits = rules_hit(
        "crates/telemetry/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert!(hits.contains(&RuleId::D2));
}

#[test]
fn d2_real_clock_source_passes_the_linter() {
    // The actual blessed helper as committed — not just a synthetic
    // fixture — stays clean end to end.
    assert_clean(
        "crates/telemetry/src/clock.rs",
        include_str!("../../telemetry/src/clock.rs"),
    );
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fail_fixture_fires() {
    // The partial_cmp().unwrap() site is also an S2 library panic, so
    // count D3 diagnostics specifically.
    let d3 = lint_source(CONTRACT, include_str!("fixtures/d3_fail.rs"))
        .into_iter()
        .filter(|d| d.rule == RuleId::D3)
        .count();
    assert_eq!(d3, 3, "partial_cmp().unwrap(), sum::<f64>, float fold");
}

#[test]
fn d3_pass_fixture_is_clean() {
    assert_clean(CONTRACT, include_str!("fixtures/d3_pass.rs"));
}

#[test]
fn d3_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/d3_pass.rs")
        .replace("sum_seq(xs.iter().copied())", "xs.iter().sum::<f64>()");
    assert!(rules_hit(CONTRACT, &mutated).contains(&RuleId::D3));
}

#[test]
fn d3_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d3_pass.rs"));
    assert!(rules_hit(CONTRACT, &mutated).contains(&RuleId::D3));
}

#[test]
fn d3_reduction_arm_only_polices_contract_files() {
    // Outside bit-identity files the comparator arm still fires but the
    // sequential-`.sum()` arm does not.
    let d3 = lint_source(ANALYSIS_LIB, include_str!("fixtures/d3_fail.rs"))
        .into_iter()
        .filter(|d| d.rule == RuleId::D3)
        .count();
    assert_eq!(d3, 1, "only partial_cmp().unwrap() outside contract files");
}

#[test]
fn d3_shard_fail_fixture_fires() {
    // Unordered reductions over per-shard winners: min_by, reduce, and
    // max_by_key each fire in a bit-identity file.
    let d3 = lint_source(SHARD_CONTRACT, include_str!("fixtures/d3_shard_fail.rs"))
        .into_iter()
        .filter(|d| d.rule == RuleId::D3)
        .count();
    assert_eq!(d3, 3, "min_by, reduce, max_by_key");
}

#[test]
fn d3_shard_pass_fixture_is_clean() {
    assert_clean(SHARD_CONTRACT, include_str!("fixtures/d3_shard_pass.rs"));
}

#[test]
fn d3_shard_replacing_blessed_loop_flips_verdict() {
    // Swapping the fixed-order combining loop for an unordered
    // reduction must be caught.
    let mutated = include_str!("fixtures/d3_shard_pass.rs").replace(
        "combine_winners(winners)",
        "winners.iter().copied().flatten().min_by(|a, b| a.1.total_cmp(&b.1))",
    );
    assert!(rules_hit(SHARD_CONTRACT, &mutated).contains(&RuleId::D3));
}

#[test]
fn d3_shard_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d3_shard_pass.rs"));
    assert!(rules_hit(SHARD_CONTRACT, &mutated).contains(&RuleId::D3));
}

#[test]
fn d3_shard_arm_only_polices_contract_files() {
    // The same reductions are fine in ordinary deterministic code.
    let d3 = lint_source(ANALYSIS_LIB, include_str!("fixtures/d3_shard_fail.rs"))
        .into_iter()
        .filter(|d| d.rule == RuleId::D3)
        .count();
    assert_eq!(d3, 0, "reducer arm must not fire outside contract files");
}

#[test]
fn d3_worker_pool_is_a_contract_file() {
    // The pool is where an unordered merge would physically happen, so
    // it sits under the same contract as the combining layer.
    let src = "pub fn merge(xs: Vec<f64>) -> Option<f64> {\n    \
               xs.into_iter().reduce(|a, b| if b < a { b } else { a })\n}\n";
    assert!(rules_hit("crates/sim/src/pool.rs", src).contains(&RuleId::D3));
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_fail_fixture_fires() {
    let hits = rules_hit(TRACE_LIB, include_str!("fixtures/s1_fail.rs"));
    assert_eq!(hits, vec![RuleId::S1]);
}

#[test]
fn s1_pass_fixture_is_clean() {
    assert_clean(TRACE_LIB, include_str!("fixtures/s1_pass.rs"));
}

#[test]
fn s1_deleting_safety_comment_flips_verdict() {
    let mutated: String = include_str!("fixtures/s1_pass.rs")
        .lines()
        .filter(|l| !l.contains("SAFETY:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(rules_hit(TRACE_LIB, &mutated).contains(&RuleId::S1));
}

#[test]
fn s1_applies_even_in_tests_and_benches() {
    let hits = rules_hit(
        "crates/sim/tests/fixture.rs",
        include_str!("fixtures/s1_fail.rs"),
    );
    assert_eq!(hits, vec![RuleId::S1]);
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_fail_fixture_fires() {
    let hits = rules_hit(ANALYSIS_LIB, include_str!("fixtures/s2_fail.rs"));
    assert_eq!(hits, vec![RuleId::S2]);
    let count = lint_source(ANALYSIS_LIB, include_str!("fixtures/s2_fail.rs")).len();
    assert_eq!(count, 3, "unwrap, expect, panic!");
}

#[test]
fn s2_pass_fixture_is_clean() {
    assert_clean(ANALYSIS_LIB, include_str!("fixtures/s2_pass.rs"));
}

#[test]
fn s2_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/s2_pass.rs"));
    assert!(rules_hit(ANALYSIS_LIB, &mutated).contains(&RuleId::S2));
}

#[test]
fn s2_cfg_test_modules_and_test_targets_are_exempt() {
    // The #[cfg(test)] module inside s2_pass unwraps; already covered by
    // the clean assertion. Whole test targets may panic freely too:
    assert_clean(
        "crates/analysis/tests/fixture.rs",
        include_str!("fixtures/s2_fail.rs"),
    );
}

// ---------------------------------------------------------------- S3

#[test]
fn s3_fail_fixture_fires() {
    let hits = rules_hit(QUERY_LIB, include_str!("fixtures/s3_fail.rs"));
    assert_eq!(hits, vec![RuleId::S3]);
}

#[test]
fn s3_pass_fixture_is_clean() {
    assert_clean(QUERY_LIB, include_str!("fixtures/s3_pass.rs"));
}

#[test]
fn s3_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/s3_pass.rs")
        .replace("(0..code32(num_rows))", "(0..num_rows as u32)");
    assert!(rules_hit(QUERY_LIB, &mutated).contains(&RuleId::S3));
}

#[test]
fn s3_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/s3_pass.rs"));
    assert!(rules_hit(QUERY_LIB, &mutated).contains(&RuleId::S3));
}

#[test]
fn s3_only_polices_query() {
    assert_clean(SIM_LIB, include_str!("fixtures/s3_fail.rs"));
}

// ------------------------------------------------- suppression syntax

#[test]
fn suppression_requires_a_reason() {
    let src = "pub fn f(xs: &[u64]) -> u64 {\n    // lint: library-panic-ok ()\n    *xs.first().unwrap()\n}\n";
    assert!(rules_hit(ANALYSIS_LIB, src).contains(&RuleId::S2));
}

#[test]
fn suppression_accepts_rule_ids_too() {
    let src = "pub fn f(xs: &[u64]) -> u64 {\n    // lint: S2-ok (demo invariant)\n    *xs.first().unwrap()\n}\n";
    assert_clean(ANALYSIS_LIB, src);
}

#[test]
fn suppression_for_one_rule_does_not_cover_another() {
    let src = "pub fn f(xs: &mut [f64]) {\n    // lint: library-panic-ok (only S2 suppressed)\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let hits = rules_hit(ANALYSIS_LIB, src);
    assert!(
        hits.contains(&RuleId::D3),
        "D3 must survive an S2-only suppression"
    );
}
