//! Per-rule fixture tests: every rule ID has a failing and a passing
//! fixture, and mutating a passing fixture (deleting the blessed
//! helper route, the suppression annotation, a contract root, or a
//! blessed call edge) flips its verdict — proving the rules fire for
//! real rather than vacuously passing.

use borg_lint::{lint_source, RuleId};

/// Paths that put fixtures in the scope each rule polices.
const SIM_LIB: &str = "crates/sim/src/fixture.rs";
const QUERY_LIB: &str = "crates/query/src/fixture.rs";
/// Anchor file of the `map_blocks` contract root (graph::CONTRACT_ROOTS).
const CONTRACT: &str = "crates/query/src/parallel.rs";
/// Anchor file of the two `ShardedPlacement` contract roots.
const SHARD_CONTRACT: &str = "crates/sim/src/shard.rs";
const TRACE_LIB: &str = "crates/trace/src/fixture.rs";
const ANALYSIS_LIB: &str = "crates/analysis/src/fixture.rs";
/// The blessed pool boundary: C1 allows `.recv()` here, C2 skips it.
const POOL_FILE: &str = "crates/sim/src/pool.rs";

fn rules_hit(rel: &str, src: &str) -> Vec<RuleId> {
    let mut rules: Vec<RuleId> = lint_source(rel, src).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

/// Count of diagnostics for one rule — fixtures often trip S2 alongside
/// the rule under test, so counts are always rule-filtered.
fn count_rule(rel: &str, src: &str, rule: RuleId) -> usize {
    lint_source(rel, src)
        .into_iter()
        .filter(|d| d.rule == rule)
        .count()
}

fn assert_clean(rel: &str, src: &str) {
    let diags = lint_source(rel, src);
    assert!(
        diags.is_empty(),
        "expected clean fixture, got:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Removes every line carrying a `// lint: …-ok (…)` suppression.
fn strip_suppressions(src: &str) -> String {
    src.lines()
        .filter_map(|l| {
            if l.trim_start().starts_with("// lint:") {
                None // whole-line suppression: drop the line
            } else if let Some(at) = l.find("// lint:") {
                Some(&l[..at]) // trailing suppression: keep the code
            } else {
                Some(l)
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fail_fixture_fires() {
    let hits = rules_hit(SIM_LIB, include_str!("fixtures/d1_fail.rs"));
    assert_eq!(hits, vec![RuleId::D1], "both iteration shapes must flag");
    let count = lint_source(SIM_LIB, include_str!("fixtures/d1_fail.rs")).len();
    assert_eq!(count, 2, "method-call shape and for-loop shape");
}

#[test]
fn d1_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/d1_pass.rs"));
}

#[test]
fn d1_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/d1_pass.rs").replace(
        "sorted_entries(&self.by_job)",
        "self.by_job.iter().map(|(k, v)| (*k, *v)).collect()",
    );
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D1));
}

#[test]
fn d1_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d1_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D1));
}

#[test]
fn d1_out_of_scope_crates_are_exempt() {
    // Non-deterministic crate: free to iterate maps.
    assert_clean(
        "crates/experiments/src/bin/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
    );
    // Tests of deterministic crates too.
    assert_clean(
        "crates/sim/tests/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
    );
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fail_fixture_fires() {
    let hits = rules_hit(SIM_LIB, include_str!("fixtures/d2_fail.rs"));
    assert_eq!(hits, vec![RuleId::D2]);
    let count = lint_source(SIM_LIB, include_str!("fixtures/d2_fail.rs")).len();
    assert_eq!(count, 3, "Instant::now, SystemTime::now, thread::current");
}

#[test]
fn d2_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/d2_pass.rs"));
}

#[test]
fn d2_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/d2_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::D2));
}

#[test]
fn d2_bench_and_criterion_are_exempt() {
    assert_clean(
        "crates/criterion/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert_clean(
        "crates/bench/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
}

#[test]
fn d2_blessed_telemetry_clock_is_exempt() {
    // The sanctioned wall-clock source: telemetry's timing plane reads
    // `Instant::now()` inside the one blessed file (DESIGN.md §12).
    // Only D2 is waived there — the fixture's other hits still apply,
    // so check rule presence rather than full cleanliness.
    let hits = rules_hit(
        "crates/telemetry/src/clock.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert!(
        !hits.contains(&RuleId::D2),
        "blessed clock file must not flag D2, got {hits:?}"
    );
}

#[test]
fn d2_rest_of_telemetry_crate_still_fails() {
    // A raw `Instant::now()` anywhere else in the (deterministic-scope)
    // telemetry crate keeps firing: the blessing is per-file, not
    // per-crate.
    let hits = rules_hit(
        "crates/telemetry/src/lib.rs",
        include_str!("fixtures/d2_fail.rs"),
    );
    assert!(hits.contains(&RuleId::D2));
}

#[test]
fn d2_real_clock_source_passes_the_linter() {
    // The actual blessed helper as committed — not just a synthetic
    // fixture — stays clean end to end.
    assert_clean(
        "crates/telemetry/src/clock.rs",
        include_str!("../../telemetry/src/clock.rs"),
    );
}

// ---------------------------------------------------------------- D3
//
// Since the call-graph rework, D3 is the *comparator* rule only:
// `partial_cmp().unwrap()` anywhere in deterministic library code.
// The old reduction arm is rule C3, scoped by contract reachability.

#[test]
fn d3_fail_fixture_fires() {
    // Each site is also an S2 library panic, so count D3 specifically.
    let d3 = count_rule(
        ANALYSIS_LIB,
        include_str!("fixtures/d3_fail.rs"),
        RuleId::D3,
    );
    assert_eq!(d3, 2, "partial_cmp().unwrap() and partial_cmp().expect()");
}

#[test]
fn d3_pass_fixture_is_clean() {
    assert_clean(ANALYSIS_LIB, include_str!("fixtures/d3_pass.rs"));
}

#[test]
fn d3_unhandling_the_none_arm_flips_verdict() {
    let mutated = include_str!("fixtures/d3_pass.rs")
        .replace("unwrap_or(std::cmp::Ordering::Equal)", "unwrap()");
    assert!(rules_hit(ANALYSIS_LIB, &mutated).contains(&RuleId::D3));
}

#[test]
fn d3_fires_outside_contract_files_too() {
    // The comparator hazard is not contract-scoped: it panics wherever
    // it runs. Plain deterministic lib files are policed the same.
    let d3 = count_rule(SIM_LIB, include_str!("fixtures/d3_fail.rs"), RuleId::D3);
    assert_eq!(d3, 2);
}

// ---------------------------------------------------------------- C1

#[test]
fn c1_untagged_send_fires() {
    let src = "pub fn ship(tx: &std::sync::mpsc::Sender<u64>, x: u64) {\n    \
               let _ = tx.send(x);\n}\n";
    assert_eq!(rules_hit(SIM_LIB, src), vec![RuleId::C1]);
}

#[test]
fn c1_tagged_send_is_clean() {
    let src = "pub fn ship(tx: &std::sync::mpsc::Sender<(usize, u64)>, i: usize, x: u64) {\n    \
               let _ = tx.send((i, x));\n}\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn c1_bare_recv_outside_pool_boundary_fires() {
    let src = "pub fn drain(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {\n    \
               rx.recv().ok()\n}\n";
    assert_eq!(rules_hit(SIM_LIB, src), vec![RuleId::C1]);
}

#[test]
fn c1_recv_inside_pool_boundary_is_blessed() {
    let src = "pub fn drain(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {\n    \
               rx.recv().ok()\n}\n";
    assert_clean(POOL_FILE, src);
}

#[test]
fn c1_annotation_suppresses() {
    let src = "pub fn ship(tx: &std::sync::mpsc::Sender<u64>, x: u64) {\n    \
               // lint: channel-protocol-ok (single-producer side channel, order-free)\n    \
               let _ = tx.send(x);\n}\n";
    assert_clean(SIM_LIB, src);
}

// ---------------------------------------------------------------- C2

#[test]
fn c2_fail_fixture_fires() {
    // Worker-body indexing plus a reachable helper's unwrap; the
    // `unreached` helper's unwrap is NOT pool-reachable and must not
    // count (C2 is graph-scoped, not file-scoped).
    let c2 = count_rule(SIM_LIB, include_str!("fixtures/c2_fail.rs"), RuleId::C2);
    assert_eq!(c2, 2, "worker indexing + reachable unwrap, nothing else");
}

#[test]
fn c2_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/c2_pass.rs"));
}

#[test]
fn c2_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/c2_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::C2));
}

#[test]
fn c2_closure_worker_is_opaque_and_flagged() {
    // Swapping the named worker fn for a closure hides the dispatch
    // target from the graph — the pool site itself is flagged.
    let mutated =
        include_str!("fixtures/c2_pass.rs").replace("work as fn(u64) -> u64", "|j| j + 1");
    let c2 = count_rule(SIM_LIB, &mutated, RuleId::C2);
    assert_eq!(c2, 1, "exactly the opaque WorkerPool::new site");
}

#[test]
fn c2_skips_the_pool_boundary_file() {
    // The pool implementation's own re-raise sites are the protocol,
    // not payload code; C2 never fires inside it.
    let c2 = count_rule(POOL_FILE, include_str!("fixtures/c2_fail.rs"), RuleId::C2);
    assert_eq!(c2, 0);
}

// ---------------------------------------------------------------- C3
//
// The graph-scoped successor of the old `BIT_IDENTITY_FILES` list:
// order-sensitive reductions are policed exactly in code transitively
// reachable from a contract root, and nowhere else.

#[test]
fn c3_fail_fixture_fires() {
    let c3 = count_rule(CONTRACT, include_str!("fixtures/c3_fail.rs"), RuleId::C3);
    assert_eq!(
        c3, 3,
        "sum::<f64>, float fold, min_by — but NOT the unreached helper"
    );
}

#[test]
fn c3_pass_fixture_is_clean() {
    assert_clean(CONTRACT, include_str!("fixtures/c3_pass.rs"));
}

#[test]
fn c3_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/c3_pass.rs")
        .replace("sum_seq(xs.iter().copied())", "xs.iter().sum::<f64>()");
    assert!(rules_hit(CONTRACT, &mutated).contains(&RuleId::C3));
}

#[test]
fn c3_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/c3_pass.rs"));
    assert!(rules_hit(CONTRACT, &mutated).contains(&RuleId::C3));
}

#[test]
fn c3_calling_an_unpoliced_helper_flips_verdict() {
    // `off_contract` carries a hazard but is unreached, so c3_pass is
    // clean. The moment the root grows a call to it, its body enters
    // contract scope and the hazard surfaces.
    let mutated = include_str!("fixtures/c3_pass.rs").replace(
        "sum_seq(xs.iter().copied()) + fast_total(xs)",
        "sum_seq(xs.iter().copied()) + fast_total(xs) + off_contract(xs)",
    );
    assert!(rules_hit(CONTRACT, &mutated).contains(&RuleId::C3));
}

#[test]
fn c3_outside_contract_anchor_files_is_silent() {
    // The same source in a plain deterministic lib file has no contract
    // root, hence no contract scope, hence no C3.
    let c3 = count_rule(
        ANALYSIS_LIB,
        include_str!("fixtures/c3_fail.rs"),
        RuleId::C3,
    );
    assert_eq!(c3, 0);
}

#[test]
fn c3_shard_fail_fixture_fires() {
    // Unordered reductions over per-shard winners: min_by, reduce, and
    // max_by_key, all reachable from the ShardedPlacement roots.
    let c3 = count_rule(
        SHARD_CONTRACT,
        include_str!("fixtures/c3_shard_fail.rs"),
        RuleId::C3,
    );
    assert_eq!(c3, 3, "min_by, reduce, max_by_key");
}

#[test]
fn c3_shard_pass_fixture_is_clean() {
    assert_clean(SHARD_CONTRACT, include_str!("fixtures/c3_shard_pass.rs"));
}

#[test]
fn c3_shard_replacing_blessed_loop_flips_verdict() {
    // Swapping the fixed-order combining loop for an unordered
    // reduction must be caught.
    let mutated = include_str!("fixtures/c3_shard_pass.rs").replace(
        "combine_winners(shards)",
        "shards.iter().filter_map(|s| s.first().copied()).reduce(f64::min)",
    );
    assert!(rules_hit(SHARD_CONTRACT, &mutated).contains(&RuleId::C3));
}

#[test]
fn c3_shard_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/c3_shard_pass.rs"));
    assert!(rules_hit(SHARD_CONTRACT, &mutated).contains(&RuleId::C3));
}

// ---------------------------------------------------------------- G1

#[test]
fn g1_renamed_contract_root_fires_and_silences_c3() {
    // Renaming the root away is the failure mode the old hand-named
    // file list couldn't see: the anchor file is still present, so G1
    // fires at line 1 — and C3 must go silent (no root, no scope)
    // rather than silently policing nothing.
    let mutated =
        include_str!("fixtures/c3_fail.rs").replace("pub fn map_blocks", "pub fn map_blocks_v2");
    let diags = lint_source(CONTRACT, &mutated);
    let g1: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::G1).collect();
    assert_eq!(g1.len(), 1, "missing `map_blocks` root must surface");
    assert_eq!(g1[0].line, 1);
    assert!(g1[0].message.contains("map_blocks"));
    assert_eq!(
        diags.iter().filter(|d| d.rule == RuleId::C3).count(),
        0,
        "no contract root resolved, so no contract scope"
    );
}

#[test]
fn g1_each_root_is_required_independently() {
    // shard.rs anchors TWO roots; deleting one fires exactly one G1.
    let mutated = include_str!("fixtures/c3_shard_pass.rs")
        .replace("pub fn first_preemptible", "pub fn later_preemptible");
    let diags = lint_source(SHARD_CONTRACT, &mutated);
    let g1: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::G1).collect();
    assert_eq!(g1.len(), 1);
    assert!(g1[0].message.contains("first_preemptible"));
}

#[test]
fn g1_non_anchor_files_owe_no_roots() {
    assert_clean(SIM_LIB, "pub fn quiet() {}\n");
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_fail_fixture_fires() {
    let hits = rules_hit(TRACE_LIB, include_str!("fixtures/s1_fail.rs"));
    assert_eq!(hits, vec![RuleId::S1]);
}

#[test]
fn s1_pass_fixture_is_clean() {
    assert_clean(TRACE_LIB, include_str!("fixtures/s1_pass.rs"));
}

#[test]
fn s1_deleting_safety_comment_flips_verdict() {
    let mutated: String = include_str!("fixtures/s1_pass.rs")
        .lines()
        .filter(|l| !l.contains("SAFETY:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(rules_hit(TRACE_LIB, &mutated).contains(&RuleId::S1));
}

#[test]
fn s1_applies_even_in_tests_and_benches() {
    let hits = rules_hit(
        "crates/sim/tests/fixture.rs",
        include_str!("fixtures/s1_fail.rs"),
    );
    assert_eq!(hits, vec![RuleId::S1]);
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_fail_fixture_fires() {
    let hits = rules_hit(ANALYSIS_LIB, include_str!("fixtures/s2_fail.rs"));
    assert_eq!(hits, vec![RuleId::S2]);
    let count = lint_source(ANALYSIS_LIB, include_str!("fixtures/s2_fail.rs")).len();
    assert_eq!(count, 3, "unwrap, expect, panic!");
}

#[test]
fn s2_pass_fixture_is_clean() {
    assert_clean(ANALYSIS_LIB, include_str!("fixtures/s2_pass.rs"));
}

#[test]
fn s2_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/s2_pass.rs"));
    assert!(rules_hit(ANALYSIS_LIB, &mutated).contains(&RuleId::S2));
}

#[test]
fn s2_cfg_test_modules_and_test_targets_are_exempt() {
    // The #[cfg(test)] module inside s2_pass unwraps; already covered by
    // the clean assertion. Whole test targets may panic freely too:
    assert_clean(
        "crates/analysis/tests/fixture.rs",
        include_str!("fixtures/s2_fail.rs"),
    );
}

// ---------------------------------------------------------------- S3

#[test]
fn s3_fail_fixture_fires() {
    let hits = rules_hit(QUERY_LIB, include_str!("fixtures/s3_fail.rs"));
    assert_eq!(hits, vec![RuleId::S3]);
}

#[test]
fn s3_pass_fixture_is_clean() {
    assert_clean(QUERY_LIB, include_str!("fixtures/s3_pass.rs"));
}

#[test]
fn s3_deleting_blessed_helper_flips_verdict() {
    let mutated = include_str!("fixtures/s3_pass.rs")
        .replace("(0..code32(num_rows))", "(0..num_rows as u32)");
    assert!(rules_hit(QUERY_LIB, &mutated).contains(&RuleId::S3));
}

#[test]
fn s3_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/s3_pass.rs"));
    assert!(rules_hit(QUERY_LIB, &mutated).contains(&RuleId::S3));
}

#[test]
fn s3_only_polices_query() {
    assert_clean(SIM_LIB, include_str!("fixtures/s3_fail.rs"));
}

// ---------------------------------------------------------------- M1

#[test]
fn m1_fail_fixture_fires() {
    let hits = rules_hit(SIM_LIB, include_str!("fixtures/m1_fail.rs"));
    assert_eq!(hits, vec![RuleId::M1]);
    assert_eq!(
        count_rule(SIM_LIB, include_str!("fixtures/m1_fail.rs"), RuleId::M1),
        2,
        "plain Vec field and per-tier VecDeque array"
    );
}

#[test]
fn m1_pass_fixture_is_clean() {
    assert_clean(SIM_LIB, include_str!("fixtures/m1_pass.rs"));
}

#[test]
fn m1_switching_to_raw_vec_flips_verdict() {
    let mutated = include_str!("fixtures/m1_pass.rs").replace("[Histogram; 3]", "Vec<u64>");
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::M1));
}

#[test]
fn m1_deleting_annotation_flips_verdict() {
    let mutated = strip_suppressions(include_str!("fixtures/m1_pass.rs"));
    assert!(rules_hit(SIM_LIB, &mutated).contains(&RuleId::M1));
}

#[test]
fn m1_telemetry_implements_the_registry_and_is_exempt() {
    assert_clean(
        "crates/telemetry/src/fixture.rs",
        include_str!("fixtures/m1_fail.rs"),
    );
}

// ------------------------------------------------- suppression syntax

#[test]
fn suppression_requires_a_reason() {
    let src = "pub fn f(xs: &[u64]) -> u64 {\n    // lint: library-panic-ok ()\n    *xs.first().unwrap()\n}\n";
    assert!(rules_hit(ANALYSIS_LIB, src).contains(&RuleId::S2));
}

#[test]
fn suppression_accepts_rule_ids_too() {
    let src = "pub fn f(xs: &[u64]) -> u64 {\n    // lint: S2-ok (demo invariant)\n    *xs.first().unwrap()\n}\n";
    assert_clean(ANALYSIS_LIB, src);
}

#[test]
fn suppression_for_one_rule_does_not_cover_another() {
    let src = "pub fn f(xs: &mut [f64]) {\n    // lint: library-panic-ok (only S2 suppressed)\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let hits = rules_hit(ANALYSIS_LIB, src);
    assert!(
        hits.contains(&RuleId::D3),
        "D3 must survive an S2-only suppression"
    );
}

#[test]
fn one_comment_line_can_suppress_two_rules() {
    // The committed idiom for dual-rule sites (e.g. S2 + C2 in the sim
    // crate): both markers ride one `// lint:` comment, each with its
    // own reason — stacking two comment lines would push the first out
    // of the one-line suppression window.
    let src = "pub fn f(xs: &mut [f64]) {\n    \
               // lint: library-panic-ok (inputs NaN-free) float-reduction-ok (same invariant)\n    \
               xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert_clean(ANALYSIS_LIB, src);
}
