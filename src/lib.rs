//! # borg2019
//!
//! A reproduction toolkit for *Borg: the Next Generation* (Tirmazi et al.,
//! EuroSys 2020): a discrete-event Borg cell simulator, calibrated workload
//! synthesis, a trace data model following the public cluster-trace
//! schemas, a columnar query engine, and the complete analysis suite that
//! regenerates every table and figure of the paper.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`trace`] — trace data model (2019 v3 and 2011 v2 schemas).
//! * [`workload`] — distributions, arrival processes, and cell profiles.
//! * [`sim`] — the discrete-event Borg cell simulator.
//! * [`query`] — the in-memory columnar query engine.
//! * [`analysis`] — statistical primitives (CCDF, C², Pareto fits, ...).
//! * [`core`] — the paper pipeline: one module per table/figure.
//! * [`serve`] — the overload-hardened trace query service (tiered
//!   admission, deadlines, seeded retries, chaos harness).
//!
//! # Examples
//!
//! ```
//! use borg2019::core::pipeline::{simulate_cell, SimScale};
//! use borg2019::workload::cells::CellProfile;
//!
//! // Simulate a tiny version of cell "a" for two days and count jobs.
//! let profile = CellProfile::cell_2019('a');
//! let outcome = simulate_cell(&profile, SimScale::tiny(), 1);
//! assert!(outcome.trace.collection_events.len() > 0);
//! ```

pub use borg_analysis as analysis;
pub use borg_core as core;
pub use borg_query as query;
pub use borg_serve as serve;
pub use borg_sim as sim;
pub use borg_trace as trace;
pub use borg_workload as workload;
