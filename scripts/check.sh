#!/usr/bin/env sh
# Repo-wide sanity gate: formatting, lints, build, tests.
#
# Everything runs with --offline: the container has no crates.io access and
# all dependencies are workspace-local (see DESIGN.md §7).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "All checks passed."
