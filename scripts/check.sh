#!/usr/bin/env sh
# Repo-wide sanity gate: formatting, lints, build, tests.
#
# Everything runs with --offline: the container has no crates.io access and
# all dependencies are workspace-local (see DESIGN.md §8).
#
# With --lint, runs only the borg-lint stage (fast pre-commit loop).
# Set LINT_BASELINE=<file> to grandfather known findings during an
# incremental cleanup; `borg-lint --write-baseline <file>` creates one.
# Every lint run writes machine-readable findings to
# target/lint-findings.json (the CI artifact) and enforces a 5-second
# wall-time budget over the analysis itself (total_ms in the JSON):
# the linter sits on the pre-commit path, so its cost is a contract.
#
# With --lint-graph, dumps the contract/pool reachability set computed
# from the call graph (one `file:line  fn  tag` row per policed
# function) — the review surface for "what does the contract cover?".
#
# With --bench, also smoke-runs every criterion benchmark once
# (CRITERION_SMOKE=1): proves the bench suite builds and executes without
# paying for real measurements.
#
# With --chaos, runs only the chaos roundtrip suite (fault injection →
# lossy write → lenient read → repair → validate), the fast loop when
# working on the fault subsystem.
#
# With --shards, runs only the sharded-placement equivalence suite
# (every shard count bit-identical to the single index, DESIGN.md §14),
# the fast loop when working on the shard/pool subsystem.
#
# With --serve, runs only the borg-serve fast loop: the crate's unit
# tests plus the wall-clock chaos smoke (200 mixed-tier queries through
# a real ServePool with injected stalls and panics; asserts clean drain
# and zero prod deadline misses, DESIGN.md §16). Budgeted under 10 s
# after the build.
#
# With --slo, runs only the observability fast loop: the witness / SLO
# / flight-recorder unit tests plus the serve_slo experiment at tiny
# scale (incident replay byte-identity, exemplar drill-down, chaos-off
# control; DESIGN.md §17).
#
# With --profile, runs only the borg-telemetry profile report
# (experiments/profile): the per-event-kind breakdown of a 512-machine
# cell-day, with the query-engine round-trip and chrome-trace JSON
# checks asserted in-process. A small smoke run of the same binary is
# part of the default path so the exporters can't rot.
#
# Both profile runs enforce the phase-fraction regression guard: the
# binary prints a machine-readable "guard: dispatch+usage_tick share"
# line, and the run fails if that share exceeds the stored baseline
# (scripts/profile_baseline) by more than 10 percentage points — the
# event-loop hot paths (DESIGN.md §13) must not quietly regress back
# toward the pre-batching profile.
set -eu

cd "$(dirname "$0")/.."

usage() {
    cat <<'EOF'
usage: scripts/check.sh [MODE]

Default (no flag): lint, fmt, clippy, build, tests, profile smoke.

Modes:
  --lint        borg-lint only (fast pre-commit loop; honors $LINT_BASELINE)
  --lint-graph  dump the computed contract/pool reachability set and exit
  --chaos    chaos roundtrip suite only (fault injection & trace repair)
  --shards   sharded-placement equivalence suite only (bit-identity sweep)
  --serve    borg-serve fast loop only (unit tests + wall-clock chaos smoke)
  --slo      observability fast loop only (witness/SLO/recorder tests + serve_slo)
  --profile  telemetry profile report only (512-machine cell-day breakdown)
  --bench    default path plus a one-pass smoke of every criterion bench
  --help     this text
EOF
}

run_bench=0
lint_only=0
lint_graph=0
chaos_only=0
profile_only=0
shards_only=0
serve_only=0
slo_only=0
for arg in "$@"; do
    case "$arg" in
    --bench) run_bench=1 ;;
    --lint) lint_only=1 ;;
    --lint-graph) lint_graph=1 ;;
    --chaos) chaos_only=1 ;;
    --shards) shards_only=1 ;;
    --serve) serve_only=1 ;;
    --slo) slo_only=1 ;;
    --profile) profile_only=1 ;;
    --help | -h)
        usage
        exit 0
        ;;
    *)
        echo "unknown flag: $arg" >&2
        usage >&2
        exit 2
        ;;
    esac
done

# Phase-fraction regression guard over one profile run's output:
# extract the "guard: dispatch+usage_tick share = NN.N%" line and fail
# if it exceeds the stored baseline ($2: a key in
# scripts/profile_baseline — dispatch_share for the single-index run,
# sharded_dispatch_share for the sharded run) by more than 10 points.
profile_guard() {
    share=$(sed -n 's/^guard: dispatch+usage_tick share = \([0-9.]*\)%.*/\1/p' "$1")
    key=$2
    if [ -z "$share" ]; then
        echo "profile guard: share line missing from profile output" >&2
        exit 1
    fi
    baseline=$(sed -n "s/^${key}=//p" scripts/profile_baseline)
    if [ -z "$baseline" ]; then
        echo "profile guard: key ${key} missing from scripts/profile_baseline" >&2
        exit 1
    fi
    if ! awk -v s="$share" -v b="$baseline" 'BEGIN { exit !(s <= b + 10.0) }'; then
        echo "profile guard: dispatch+usage_tick share ${share}% exceeds" \
            "${key} baseline ${baseline}% by more than 10 points" >&2
        exit 1
    fi
    echo "profile guard: dispatch+usage_tick share ${share}%" \
        "(${key} baseline ${baseline}%, limit +10 points)"
}

if [ "$profile_only" -eq 1 ]; then
    echo "==> telemetry profile (512-machine cell-day)"
    profile_out=$(mktemp)
    cargo run -q --release -p borg-experiments --offline --bin profile >"$profile_out"
    cat "$profile_out"
    profile_guard "$profile_out" dispatch_share
    echo "==> telemetry profile (512-machine cell-day, 4 placement shards)"
    cargo run -q --release -p borg-experiments --offline --bin profile -- --shards 4 >"$profile_out"
    cat "$profile_out"
    profile_guard "$profile_out" sharded_dispatch_share
    rm -f "$profile_out"
    echo "Profile check passed."
    exit 0
fi

if [ "$shards_only" -eq 1 ]; then
    echo "==> sharded-placement equivalence (bit-identity across shard counts)"
    cargo test -p borg-sim --test shard_equivalence --offline -q
    cargo test -p borg-sim --offline -q --lib shard::
    cargo test -p borg-sim --offline -q --lib pool::
    echo "Shard check passed."
    exit 0
fi

if [ "$serve_only" -eq 1 ]; then
    echo "==> borg-serve unit tests"
    cargo test -p borg-serve --offline -q
    echo "==> serve smoke (wall-clock chaos: stalls, panics, tiered deadlines)"
    cargo run -q -p borg-experiments --offline --bin serve_smoke -- --scale tiny
    echo "Serve check passed."
    exit 0
fi

if [ "$slo_only" -eq 1 ]; then
    echo "==> observability unit tests (witness, slo, recorder)"
    cargo test -p borg-serve --offline -q --lib witness::
    cargo test -p borg-serve --offline -q --lib slo::
    cargo test -p borg-serve --offline -q --lib recorder::
    echo "==> witness determinism suite"
    cargo test -p borg2019 --test serve_witness --offline -q
    echo "==> serve_slo (incident replay, exemplar drill-down, control)"
    cargo run -q --release -p borg-experiments --offline --bin serve_slo -- --scale tiny
    echo "SLO check passed."
    exit 0
fi

if [ "$chaos_only" -eq 1 ]; then
    echo "==> chaos roundtrip (fault injection & trace repair)"
    cargo test -p borg2019 --test chaos_roundtrip --offline -q
    echo "Chaos check passed."
    exit 0
fi

# borg-lint: workspace determinism & soundness rules (DESIGN.md §10,
# §15). Runs first — it needs only `cargo build -p borg-lint`, so it
# reports before the full workspace compiles. Honors $LINT_BASELINE if
# set. Always leaves target/lint-findings.json behind as the CI
# artifact, and budgets the analysis at 5 s of wall time (total_ms as
# the linter itself measures it, so the guard is independent of cargo's
# compile time on a cold target dir).
LINT_JSON=target/lint-findings.json
LINT_BUDGET_MS=5000
run_lint() {
    echo "==> borg-lint (determinism & soundness rules)"
    mkdir -p target
    cargo run -q --release -p borg-lint --offline -- --root . --json "$LINT_JSON"
    total_ms=$(sed -n 's/.*"total_ms": \([0-9.]*\).*/\1/p' "$LINT_JSON")
    if [ -z "$total_ms" ]; then
        echo "lint budget: total_ms missing from $LINT_JSON" >&2
        exit 1
    fi
    if ! awk -v t="$total_ms" -v b="$LINT_BUDGET_MS" 'BEGIN { exit !(t <= b) }'; then
        echo "lint budget: analysis took ${total_ms} ms, budget ${LINT_BUDGET_MS} ms —" \
            "check the per-rule timings_ms split in $LINT_JSON" >&2
        exit 1
    fi
    echo "lint budget: ${total_ms} ms of ${LINT_BUDGET_MS} ms; findings artifact at $LINT_JSON"
}

if [ "$lint_graph" -eq 1 ]; then
    echo "==> borg-lint --dump-graph (contract/pool reachability set)"
    cargo run -q --release -p borg-lint --offline -- --root . --dump-graph
    exit 0
fi

if [ "$lint_only" -eq 1 ]; then
    run_lint
    echo "Lint check passed."
    exit 0
fi

run_lint

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> telemetry profile smoke (64-machine cell-day)"
profile_out=$(mktemp)
cargo run -q --release -p borg-experiments --offline --bin profile -- --machines 64 >"$profile_out"
profile_guard "$profile_out" dispatch_share
cargo run -q --release -p borg-experiments --offline --bin profile -- --machines 64 --shards 4 >"$profile_out"
profile_guard "$profile_out" sharded_dispatch_share
rm -f "$profile_out"

if [ "$run_bench" -eq 1 ]; then
    echo "==> cargo bench (smoke: one pass per benchmark)"
    CRITERION_SMOKE=1 cargo bench --workspace --offline
fi

echo "All checks passed."
