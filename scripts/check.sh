#!/usr/bin/env sh
# Repo-wide sanity gate: formatting, lints, build, tests.
#
# Everything runs with --offline: the container has no crates.io access and
# all dependencies are workspace-local (see DESIGN.md §8).
#
# With --bench, also smoke-runs every criterion benchmark once
# (CRITERION_SMOKE=1): proves the bench suite builds and executes without
# paying for real measurements.
set -eu

cd "$(dirname "$0")/.."

run_bench=0
for arg in "$@"; do
    case "$arg" in
    --bench) run_bench=1 ;;
    *)
        echo "usage: $0 [--bench]" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline -q

if [ "$run_bench" -eq 1 ]; then
    echo "==> cargo bench (smoke: one pass per benchmark)"
    CRITERION_SMOKE=1 cargo bench --workspace --offline
fi

echo "All checks passed."
