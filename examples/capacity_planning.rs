//! Capacity planning: how far can over-commitment be pushed?
//!
//! Research direction #2 of the paper. This example sweeps the arrival
//! rate of one cell (holding the fleet fixed) and reports utilization,
//! scheduling delay, and eviction counts — the trade-off frontier a
//! capacity planner would look at before admitting more work onto fixed
//! hardware.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use borg2019::sim::{CellSim, SimConfig};
use borg2019::trace::time::Micros;
use borg2019::workload::cells::CellProfile;

fn main() {
    let base = CellProfile::cell_2019('d');
    println!("sweeping job arrival rate on cell d (fixed fleet, 3 simulated days each):\n");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "rate mult", "cpu util", "cpu alloc", "med delay", "p90 delay", "evictions"
    );

    for mult in [0.6, 0.8, 1.0, 1.2, 1.5] {
        let mut profile = base.clone();
        profile.job_rate_per_hour *= mult;
        // Scale the usage targets with the offered load so the generator
        // sizes jobs consistently.
        for tier in &mut profile.tiers {
            tier.target_cpu_util *= mult;
            tier.target_mem_util *= mult;
        }
        let mut cfg = SimConfig::tiny_for_tests(99);
        cfg.scale = 0.004;
        cfg.horizon = Micros::from_days(3);
        cfg.snapshot_at = Micros::from_days(1);
        let outcome = CellSim::run_cell(&profile, &cfg);

        let util: f64 = outcome.metrics.average_cpu_util_by_tier().values().sum();
        let alloc: f64 = outcome.metrics.average_cpu_alloc_by_tier().values().sum();
        let mut delays: Vec<f64> = outcome
            .metrics
            .delays
            .iter()
            .map(|d| d.delay_secs)
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = delays.get(delays.len() / 2).copied().unwrap_or(f64::NAN);
        let p90 = delays
            .get((delays.len() as f64 * 0.9) as usize)
            .copied()
            .unwrap_or(f64::NAN);
        let evictions: u64 = outcome.metrics.evictions_by_collection.values().sum();
        println!(
            "{:>9.1}x {:>10.3} {:>12.3} {:>11.1}s {:>11.0}s {:>10}",
            mult, util, alloc, med, p90, evictions
        );
    }

    println!("\nhigher offered load buys utilization until scheduling delay and");
    println!("evictions blow up — the statistical-multiplexing frontier of §4.");
}
