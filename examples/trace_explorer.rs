//! Trace explorer: ad-hoc relational queries over a simulated trace.
//!
//! The paper's authors analyzed the trace with BigQuery SQL (§3, §9);
//! this example shows the equivalent workflow against the in-memory
//! query engine: load the trace tables, then filter / join / aggregate.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::core::tables;
use borg2019::query::prelude::*;
use borg2019::query::Agg;
use borg2019::workload::cells::CellProfile;

fn main() -> Result<(), borg2019::query::QueryError> {
    let outcome = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Small, 11);
    let trace = &outcome.trace;
    println!(
        "loaded cell {} as relational tables: {} collection events, {} instance events\n",
        trace.cell_name,
        trace.collection_events.len(),
        trace.instance_events.len()
    );

    // Query 1: termination mix per tier (the §5.2 question).
    let coll = tables::collection_events_table(trace)?;
    let terminations = Query::from(coll.clone())
        .filter(
            col("type").eq(lit("job")).and(
                col("event")
                    .eq(lit("finish"))
                    .or(col("event").eq(lit("kill")))
                    .or(col("event").eq(lit("fail"))),
            ),
        )
        .group_by(&["tier", "event"], vec![Agg::count_all("n")])
        .sort_by_many(&[("tier", SortOrder::Ascending), ("n", SortOrder::Descending)])
        .run()?;
    println!("-- job terminations by tier and kind --\n{terminations}");

    // Query 2: kill rate for jobs with vs without parents.
    let kills = Query::from(coll.clone())
        .filter(
            col("type")
                .eq(lit("job"))
                .and(col("event").eq(lit("submit"))),
        )
        .derive("has_parent", col("parent_id").is_null().not())
        .select(&["collection_id", "has_parent"])
        .run()?;
    let killed = Query::from(coll)
        .filter(col("event").eq(lit("kill")))
        .select(&["collection_id"])
        .derive("killed", lit(true))
        .run()?;
    let by_parent = Query::from(kills)
        .left_join(killed, &["collection_id"], &["collection_id"])
        .derive("was_killed", col("killed").is_null().not())
        .group_by(&["has_parent", "was_killed"], vec![Agg::count_all("jobs")])
        .sort_by_many(&[
            ("has_parent", SortOrder::Ascending),
            ("was_killed", SortOrder::Ascending),
        ])
        .run()?;
    println!("-- §5.2: kills by parent status --\n{by_parent}");

    // Query 3: the biggest resource requests placed on any machine.
    let inst = tables::instance_events_table(trace)?;
    let biggest = Query::from(inst)
        .filter(col("event").eq(lit("schedule")))
        .sort_by("cpu_request", SortOrder::Descending)
        .limit(5)
        .select(&[
            "collection_id",
            "instance_index",
            "tier",
            "cpu_request",
            "mem_request",
        ])
        .run()?;
    println!("-- five largest placed requests --\n{biggest}");

    // Query 4: per-machine sampled CPU usage, top 5 machines.
    let usage = tables::usage_table(trace)?;
    let hot = Query::from(usage)
        .group_by(
            &["machine_id"],
            vec![Agg::mean("avg_cpu", "mean_cpu"), Agg::count_all("samples")],
        )
        .sort_by("mean_cpu", SortOrder::Descending)
        .limit(5)
        .run()?;
    println!("-- hottest machines by sampled task CPU --\n{hot}");

    Ok(())
}
