//! Hog isolation: quantify §7.3's scheduling suggestion.
//!
//! The paper's research-direction #5 asks how to schedule so the 99% of
//! "mice" jobs are isolated from the 1% of "hogs" that consume 99% of
//! resources. This example measures the workload's heavy tail and runs
//! the M/G/1 what-if analysis: how much queueing the mice would avoid if
//! the hogs were segregated.
//!
//! ```sh
//! cargo run --release --example hog_isolation
//! ```

use borg2019::analysis::moments::Moments;
use borg2019::analysis::pareto::{ParetoFit, TailShare};
use borg2019::analysis::queueing::{isolation_benefit, mg1_mean_queueing_delay};
use borg2019::workload::integral::IntegralModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Sample a large population of per-job usage integrals from the 2019
    // calibration.
    let mut rng = StdRng::seed_from_u64(7);
    let jobs = IntegralModel::model_2019().sample_many(1_000_000, &mut rng);
    let cpu: Vec<f64> = jobs.iter().map(|j| j.ncu_hours).collect();

    // 1. How heavy is the tail?
    let tail = TailShare::compute(&cpu).expect("non-degenerate sample");
    let fit = ParetoFit::fit_ccdf_regression(&cpu, 1.0, 99.99).expect("tail fits");
    println!("workload characterization (1M jobs):");
    println!(
        "  top 1% of jobs carry {:.1}% of the CPU load",
        tail.top_1_percent * 100.0
    );
    println!("  top 0.1% carry {:.1}%", tail.top_01_percent * 100.0);
    println!(
        "  Pareto alpha = {:.2} (R² = {:.3})",
        fit.alpha, fit.r_squared
    );

    // 2. Split hogs from mice at the 99th percentile.
    let mut sorted = cpu.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cut = sorted[(sorted.len() as f64 * 0.99) as usize];
    let mice: Moments = cpu.iter().copied().filter(|&x| x < cut).collect();
    let all: Moments = cpu.iter().copied().collect();
    println!("\nsquared coefficient of variation:");
    println!("  full mix: C² = {:.0}", all.c_squared());
    println!("  mice only: C² = {:.1}", mice.c_squared());

    // 3. The M/G/1 what-if at a range of loads.
    println!("\nPollaczek–Khinchine mean queueing delay (mean service times):");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "load", "mixed queue", "mice isolated", "benefit"
    );
    for rho in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mixed = mg1_mean_queueing_delay(rho, all.c_squared()).expect("valid load");
        let isolated = mg1_mean_queueing_delay(rho, mice.c_squared()).expect("valid load");
        let benefit = isolation_benefit(rho, all.c_squared(), mice.c_squared()).expect("valid");
        println!("{rho:>6.1} {mixed:>14.0} {isolated:>14.2} {benefit:>9.0}x");
    }
    println!("\nisolating the hogs lets the mice run in a near-empty queue (§7.3).");
}
