//! Quickstart: simulate a small Borg cell, validate the trace, and print
//! headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::trace::validate::validate;
use borg2019::workload::cells::CellProfile;

fn main() {
    // 1. Pick a cell profile — cell "a" is the production-heavy cell of
    //    the 2019 trace — and simulate a scaled-down week.
    let profile = CellProfile::cell_2019('a');
    let outcome = simulate_cell(&profile, SimScale::Small, 42);

    // 2. The outcome carries the trace tables (v3 schema)...
    let trace = &outcome.trace;
    println!("cell {}:", trace.cell_name);
    println!("  machines:           {}", trace.machine_count());
    println!("  collections:        {}", trace.collections().len());
    println!("  instance events:    {}", trace.instance_events.len());
    println!("  usage samples kept: {}", trace.usage.len());

    // 3. ...which satisfy the §9 logical invariants of the paper.
    let violations = validate(trace);
    println!("  validation: {} violations", violations.len());

    // 4. Pre-aggregated metrics answer the paper's questions directly.
    println!("\naverage CPU utilization by tier (fraction of cell capacity):");
    for (tier, util) in outcome.metrics.average_cpu_util_by_tier() {
        println!("  {tier:>5}: {util:.3}");
    }
    println!("\naverage CPU allocation by tier (over-commitment!):");
    for (tier, alloc) in outcome.metrics.average_cpu_alloc_by_tier() {
        println!("  {tier:>5}: {alloc:.3}");
    }

    let delays: Vec<f64> = outcome
        .metrics
        .delays
        .iter()
        .map(|d| d.delay_secs)
        .collect();
    let ccdf = borg2019::analysis::Ccdf::from_samples(delays);
    println!(
        "\nmedian job scheduling delay: {:.2}s over {} jobs",
        ccdf.median().unwrap_or(f64::NAN),
        ccdf.len()
    );
}
