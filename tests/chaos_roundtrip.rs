//! Chaos roundtrip: the closed fault loop, end to end.
//!
//! `validate(repair(read_lenient(corrupt(generate_with_faults(...)))))`
//! must come back with zero violations, and every injected fault must be
//! accounted for exactly: duplicates by the repair deduper, garbled
//! lines by the quarantine, drops and truncation by the row-count
//! ledger. Runs over multiple seeds and corruption profiles, plus
//! bit-identity and graceful-degradation checks.

use borg2019::core::pipeline::{load_trace_dir, simulate_cell, simulate_cell_faulty, SimScale};
use borg2019::sim::{
    corrupt_trace, write_trace_dir_lossy, CellSim, CorruptionConfig, FaultConfig, SimConfig,
    TableFaults,
};
use borg2019::trace::csv::{FILE_COLLECTION, FILE_INSTANCE, FILE_MACHINE, FILE_USAGE};
use borg2019::trace::machine::MachineEventType;
use borg2019::trace::state::EventType;
use borg2019::trace::time::Micros;
use borg2019::trace::trace::Trace;
use borg2019::trace::validate::validate;
use borg2019::workload::cells::CellProfile;

/// Seeds whose tiny fault-enabled simulations actually fire machine
/// failures (the tiny window is short relative to the MTBF, so most
/// seeds draw none).
const ACTIVE_SEEDS: [u64; 3] = [6, 13, 25];

fn tmp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("borg_chaos_{tag}_{seed}_{}", std::process::id()))
}

/// Per-table `(clean_len, corrupted_len, ingested_len, faults)` rows for
/// the ledger arithmetic below.
fn table_rows<'a>(
    clean: &'a Trace,
    corrupted: &'a Trace,
    ingested: &'a Trace,
    ledger: &'a borg2019::sim::FaultLedger,
) -> [(&'static str, usize, usize, usize, &'a TableFaults); 4] {
    [
        (
            FILE_MACHINE,
            clean.machine_events.len(),
            corrupted.machine_events.len(),
            ingested.machine_events.len(),
            &ledger.machine_events,
        ),
        (
            FILE_COLLECTION,
            clean.collection_events.len(),
            corrupted.collection_events.len(),
            ingested.collection_events.len(),
            &ledger.collection_events,
        ),
        (
            FILE_INSTANCE,
            clean.instance_events.len(),
            corrupted.instance_events.len(),
            ingested.instance_events.len(),
            &ledger.instance_events,
        ),
        (
            FILE_USAGE,
            clean.usage.len(),
            corrupted.usage.len(),
            ingested.usage.len(),
            &ledger.usage,
        ),
    ]
}

#[test]
fn chaos_roundtrip_repairs_to_zero_violations() {
    let profile = CellProfile::cell_2019('a');
    for &seed in &ACTIVE_SEEDS {
        let outcome = simulate_cell_faulty(&profile, SimScale::Tiny, seed);
        assert!(
            outcome.metrics.machine_failures > 0,
            "seed {seed} fired no machine failures; pick an active seed"
        );
        for (name, cc) in [
            ("lossy", CorruptionConfig::lossy()),
            ("harsh", CorruptionConfig::harsh()),
        ] {
            let dir = tmp_dir(name, seed);
            std::fs::create_dir_all(&dir).expect("mkdir");
            let (corrupted, mut ledger) = corrupt_trace(&outcome.trace, &cc, seed);
            write_trace_dir_lossy(&corrupted, &dir, &cc, seed, &mut ledger).expect("lossy write");

            // Lenient read, then repair (inside load_trace_dir).
            let (repaired, quality) = load_trace_dir(&dir);
            let violations = validate(&repaired);
            assert!(
                violations.is_empty(),
                "seed {seed} profile {name}: {} violations after repair; first: {}",
                violations.len(),
                violations[0]
            );

            // Re-read leniently (without repair) so ingested lengths are
            // observable before the repairer rewrites the tables.
            let (ingested, quarantine) = borg2019::trace::csv::read_trace_dir_lenient(&dir);
            for (file, clean_len, corr_len, ing_len, tf) in
                table_rows(&outcome.trace, &corrupted, &ingested, &ledger)
            {
                // Row-count ledger arithmetic, exact per table.
                assert_eq!(
                    corr_len as u64,
                    clean_len as u64 - tf.truncated - tf.dropped + tf.duplicated,
                    "seed {seed} profile {name}: {file} corrupted-length equation"
                );
                assert_eq!(
                    ing_len as u64,
                    corr_len as u64 - tf.garbled,
                    "seed {seed} profile {name}: {file} ingested-length equation"
                );
                // Every garbled line quarantined, nothing else.
                assert_eq!(
                    quarantine.count_for(file),
                    tf.garbled,
                    "seed {seed} profile {name}: {file} quarantine vs garbled"
                );
            }

            if name == "lossy" {
                // No jitter and no garbling in this profile, so the
                // repair deduper must remove exactly the injected
                // duplicates — per table.
                let q = &quality.repair;
                assert_eq!(q.machine_events.deduped, ledger.machine_events.duplicated);
                assert_eq!(
                    q.collection_events.deduped,
                    ledger.collection_events.duplicated
                );
                assert_eq!(q.instance_events.deduped, ledger.instance_events.duplicated);
                assert_eq!(q.usage.deduped, ledger.usage.duplicated);
            }
            assert!(!quality.is_pristine(), "corruption left no trace?");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn faulty_sim_indexed_matches_naive_scan() {
    let profile = CellProfile::cell_2019('a');
    let faults = Some(FaultConfig::from_model(&profile.failure_model));
    let mut indexed = SimConfig {
        faults: faults.clone(),
        ..SimConfig::tiny_for_tests(13)
    };
    indexed.use_placement_index = true;
    let mut naive = indexed.clone();
    naive.use_placement_index = false;

    let a = CellSim::run_cell(&profile, &indexed);
    let b = CellSim::run_cell(&profile, &naive);
    assert!(a.metrics.machine_failures > 0, "want an active fault run");
    assert_eq!(a.trace.machine_events, b.trace.machine_events);
    assert_eq!(a.trace.collection_events, b.trace.collection_events);
    assert_eq!(a.trace.instance_events, b.trace.instance_events);
    assert_eq!(a.trace.usage, b.trace.usage);
}

#[test]
fn faulty_trace_records_failures_and_losses() {
    let outcome = simulate_cell_faulty(&CellProfile::cell_2019('a'), SimScale::Tiny, 13);
    let removes = outcome
        .trace
        .machine_events
        .iter()
        .filter(|e| e.event_type == MachineEventType::Remove)
        .count() as u64;
    let adds_after_start = outcome
        .trace
        .machine_events
        .iter()
        .filter(|e| e.event_type == MachineEventType::Add && e.time > Micros::ZERO)
        .count() as u64;
    assert_eq!(removes, outcome.metrics.machine_failures);
    assert_eq!(adds_after_start, outcome.metrics.machine_repairs);
    let lost = outcome
        .trace
        .instance_events
        .iter()
        .filter(|e| e.event_type == EventType::Lost)
        .count() as u64;
    assert!(
        lost >= outcome.metrics.tasks_lost,
        "lost events undercounted"
    );
    // The fault-enabled trace still satisfies every §9 invariant.
    assert!(validate(&outcome.trace).is_empty());
}

#[test]
fn graceful_degradation_analyses_still_complete() {
    // 5% drops plus a truncated tail — the ISSUE's degradation scenario.
    let cc = CorruptionConfig {
        drop_fraction: 0.05,
        duplicate_fraction: 0.0,
        reorder_fraction: 0.0,
        jitter_fraction: 0.0,
        max_jitter: Micros::ZERO,
        truncate_tail: Some(Micros::from_hours(12)),
        garble_fraction: 0.0,
    };
    let outcome = simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 7);
    let dir = tmp_dir("degrade", 7);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (corrupted, mut ledger) = corrupt_trace(&outcome.trace, &cc, 7);
    write_trace_dir_lossy(&corrupted, &dir, &cc, 7, &mut ledger).expect("write");
    let (trace, quality) = load_trace_dir(&dir);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!quality.is_pristine());
    assert!(quality.annotation().starts_with("data quality:"));
    assert!(quality.fraction_affected() > 0.0);

    // The summarize-style analyses all complete without panicking.
    let infos = trace.collections();
    assert!(!infos.is_empty());
    let census = borg2019::trace::machine::shape_census(&trace.machine_events);
    assert!(census.adds > 0);
    let _ = trace.nominal_capacity();
    let mean_cpu =
        trace.usage.iter().map(|u| u.avg_usage.cpu).sum::<f64>() / trace.usage.len().max(1) as f64;
    assert!(mean_cpu.is_finite());
    assert!(validate(&trace).is_empty());
}

#[test]
fn low_fault_rates_preserve_headline_statistics() {
    // At 1% corruption, repaired headline statistics must track the
    // clean trace closely — degradation is graceful, not cliff-edged.
    let cc = CorruptionConfig {
        drop_fraction: 0.01,
        duplicate_fraction: 0.01,
        reorder_fraction: 0.01,
        jitter_fraction: 0.0,
        max_jitter: Micros::ZERO,
        truncate_tail: None,
        garble_fraction: 0.0,
    };
    let outcome = simulate_cell(&CellProfile::cell_2019('c'), SimScale::Tiny, 9);
    let dir = tmp_dir("tolerance", 9);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (corrupted, mut ledger) = corrupt_trace(&outcome.trace, &cc, 9);
    write_trace_dir_lossy(&corrupted, &dir, &cc, 9, &mut ledger).expect("write");
    let (repaired, _) = load_trace_dir(&dir);
    std::fs::remove_dir_all(&dir).ok();

    let submits = |t: &Trace| {
        t.instance_events
            .iter()
            .filter(|e| e.event_type == EventType::Submit)
            .count() as f64
    };
    let mean_cpu = |t: &Trace| {
        t.usage.iter().map(|u| u.avg_usage.cpu).sum::<f64>() / t.usage.len().max(1) as f64
    };
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-12);

    assert!(
        rel(submits(&outcome.trace), submits(&repaired)) < 0.05,
        "task submissions drifted more than 5%"
    );
    assert!(
        rel(
            outcome.trace.collections().len() as f64,
            repaired.collections().len() as f64
        ) < 0.05,
        "collection count drifted more than 5%"
    );
    assert!(
        rel(mean_cpu(&outcome.trace), mean_cpu(&repaired)) < 0.05,
        "mean task CPU usage drifted more than 5%"
    );
}

#[test]
fn faults_disabled_is_deterministic_and_fault_free() {
    let cfg = SimConfig::tiny_for_tests(42);
    assert!(cfg.faults.is_none(), "presets must default to no faults");
    let a = CellSim::run_cell(&CellProfile::cell_2019('a'), &cfg);
    let b = CellSim::run_cell(&CellProfile::cell_2019('a'), &cfg);
    assert_eq!(a.metrics.machine_failures, 0);
    assert_eq!(a.trace.machine_events, b.trace.machine_events);
    assert_eq!(a.trace.instance_events, b.trace.instance_events);
    assert!(a
        .trace
        .machine_events
        .iter()
        .all(|e| e.event_type != MachineEventType::Remove));
}
