//! The paper's analyses re-expressed as SQL-style query pipelines over
//! the relational trace views — checked against the native analysis
//! modules on the same simulated cell.

use borg2019::core::analyses::submission;
use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::core::tables;
use borg2019::query::prelude::*;
use borg2019::query::Agg;
use borg2019::sim::CellOutcome;
use borg2019::workload::cells::CellProfile;
use std::sync::OnceLock;

fn outcome() -> &'static CellOutcome {
    static O: OnceLock<CellOutcome> = OnceLock::new();
    O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('e'), SimScale::Tiny, 91))
}

const HOUR_US: f64 = 3.6e9;

#[test]
fn figure8_as_sql_matches_metrics() {
    // SELECT bucket(time, hour) AS hour, COUNT(*) FROM collection_events
    // WHERE event = 'submit' AND type = 'job' GROUP BY hour
    let coll = tables::collection_events_table(&outcome().trace).expect("table");
    let per_hour = Query::from(coll)
        .filter(
            col("event")
                .eq(lit("submit"))
                .and(col("type").eq(lit("job"))),
        )
        .derive("hour", col("time").bucket(HOUR_US))
        .group_by(&["hour"], vec![Agg::count_all("jobs")])
        .run()
        .expect("query");
    let sql_total: i64 = (0..per_hour.num_rows())
        .map(|r| per_hour.value(r, "jobs").unwrap().as_i64().unwrap())
        .sum();
    // The metrics count alloc-set submissions too; jobs alone must be
    // within the metrics' total.
    let metrics_total: f64 = outcome().metrics.job_submissions.totals().iter().sum();
    assert!(sql_total as f64 <= metrics_total + 0.5);
    assert!(
        sql_total as f64 > metrics_total * 0.9,
        "{sql_total} vs {metrics_total}"
    );
}

#[test]
fn figure9_churn_as_sql() {
    // Reschedules = submissions beyond the first per instance.
    let inst = tables::instance_events_table(&outcome().trace).expect("table");
    let submits = Query::from(inst)
        .filter(col("event").eq(lit("submit")))
        .group_by(
            &["collection_id", "instance_index"],
            vec![Agg::count_all("submits")],
        )
        .run()
        .expect("query");
    let mut new = 0i64;
    let mut all = 0i64;
    for r in 0..submits.num_rows() {
        let s = submits.value(r, "submits").unwrap().as_i64().unwrap();
        new += 1;
        all += s;
    }
    let sql_churn = (all - new) as f64 / new as f64;
    let metric_churn = submission::churn_ratio(outcome());
    assert!(
        (sql_churn - metric_churn).abs() < 0.05,
        "sql churn {sql_churn} vs metric churn {metric_churn}"
    );
}

#[test]
fn users_analysis_count_distinct() {
    // How many distinct users submit per tier — a COUNT(DISTINCT) query
    // of the kind the paper's accounting discussion implies.
    let coll = tables::collection_events_table(&outcome().trace).expect("table");
    let users = Query::from(coll)
        .filter(col("event").eq(lit("submit")))
        .group_by(&["tier"], vec![Agg::count_distinct("user_id", "users")])
        .sort_by("users", SortOrder::Descending)
        .run()
        .expect("query");
    assert!(users.num_rows() >= 3);
    for r in 0..users.num_rows() {
        let n = users.value(r, "users").unwrap().as_i64().unwrap();
        assert!(n >= 1);
    }
}

#[test]
fn hourly_usage_bucketing_consistent() {
    // Bucket the usage samples by hour and check the totals stay within
    // the trace's sampled usage mass.
    let usage = tables::usage_table(&outcome().trace).expect("table");
    let direct: f64 = outcome().trace.usage.iter().map(|u| u.avg_usage.cpu).sum();
    let per_hour = Query::from(usage)
        .derive("hour", col("start").bucket(HOUR_US))
        .group_by(&["hour"], vec![Agg::sum("avg_cpu", "cpu")])
        .run()
        .expect("query");
    let sql: f64 = (0..per_hour.num_rows())
        .map(|r| per_hour.value(r, "cpu").unwrap().as_f64().unwrap())
        .sum();
    assert!((sql - direct).abs() < 1e-6 * (1.0 + direct));
}
