//! Telemetry determinism contracts (DESIGN.md §12).
//!
//! The deterministic plane is a pure function of (seed, config): two
//! runs give byte-identical snapshots, and since it only records *what*
//! the simulation did — never how the engine did it — it is also
//! identical across naive-scan and indexed placement. Engine-plane
//! counters (index hit/miss) legitimately differ across strategies and
//! are only stable per config. Disabled telemetry produces an empty
//! snapshot and never perturbs the simulated trace.

use borg_sim::{CellSim, SimConfig};
use borg_telemetry::{chrome_trace_json, validate_json, Plane};
use borg_workload::cells::CellProfile;

fn cfg(seed: u64, telemetry: bool, indexed: bool) -> SimConfig {
    SimConfig {
        telemetry,
        use_placement_index: indexed,
        ..SimConfig::tiny_for_tests(seed)
    }
}

#[test]
fn deterministic_plane_is_byte_identical_across_runs() {
    let profile = CellProfile::cell_2019('a');
    let a = CellSim::run_cell(&profile, &cfg(7, true, true)).telemetry;
    let b = CellSim::run_cell(&profile, &cfg(7, true, true)).telemetry;
    assert!(!a.deterministic_bytes().is_empty());
    assert_eq!(a.deterministic_bytes(), b.deterministic_bytes());
    // Same config ⇒ even the engine plane repeats byte-for-byte.
    assert_eq!(
        a.config_deterministic_bytes(),
        b.config_deterministic_bytes()
    );
}

#[test]
fn deterministic_plane_is_identical_across_naive_and_indexed() {
    let profile = CellProfile::cell_2019('b');
    let indexed = CellSim::run_cell(&profile, &cfg(11, true, true)).telemetry;
    let naive = CellSim::run_cell(&profile, &cfg(11, true, false)).telemetry;
    assert_eq!(indexed.deterministic_bytes(), naive.deterministic_bytes());
    // The engine plane is allowed — expected — to differ: the index
    // answers placements from its cache, the naive scan never does.
    assert_ne!(
        indexed.config_deterministic_bytes(),
        naive.config_deterministic_bytes()
    );
}

#[test]
fn disabled_telemetry_is_empty_and_does_not_perturb_the_trace() {
    let profile = CellProfile::cell_2019('a');
    let off = CellSim::run_cell(&profile, &cfg(7, false, true));
    let on = CellSim::run_cell(&profile, &cfg(7, true, true));
    assert!(off.telemetry.is_empty());
    assert!(off.telemetry.deterministic_bytes().is_empty());
    assert!(!on.telemetry.is_empty());
    assert_eq!(
        off.trace.instance_events.len(),
        on.trace.instance_events.len()
    );
    assert_eq!(off.trace.usage.len(), on.trace.usage.len());
    assert_eq!(
        off.metrics.instance_transitions.total(),
        on.metrics.instance_transitions.total()
    );
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let profile = CellProfile::cell_2019('a');
    let snap = CellSim::run_cell(&profile, &cfg(3, true, true)).telemetry;
    let json = chrome_trace_json(&snap);
    assert!(json.contains("traceEvents"));
    validate_json(&json).expect("chrome trace must parse as JSON");
    // The validator itself must reject malformed output, or the check
    // above is vacuous.
    assert!(validate_json(&json[..json.len() - 1]).is_err());
}

#[test]
fn snapshot_round_trips_through_borg_query() {
    use borg_query::{bridge, col, lit, Agg, Query};
    let profile = CellProfile::cell_2019('a');
    let snap = CellSim::run_cell(&profile, &cfg(3, true, true)).telemetry;
    let rollup = Query::from(bridge::counters_table(&snap))
        .filter(col("plane").eq(lit("det")))
        .group_by(&[], vec![Agg::sum("value", "total")])
        .run()
        .expect("rollup query");
    let engine_total = rollup
        .value(0, "total")
        .expect("total")
        .as_f64()
        .expect("numeric");
    let direct_total: u64 = snap
        .counters
        .iter()
        .filter(|c| c.plane == Plane::Deterministic)
        .map(|c| c.value)
        .sum();
    assert!(direct_total > 0);
    assert!((engine_total - direct_total as f64).abs() < 0.5);
}
