//! Serve determinism: chaos decisions are byte-replayable.
//!
//! The service's robustness machinery is riddled with *timing*: stalls,
//! backoffs, deadline races, breaker windows. The contract under test
//! is that none of it leaks nondeterminism — for a fixed seed and
//! stall schedule, two runs of the virtual-time driver produce a
//! byte-identical event log and identical shed / expired / retried
//! query-id sets; a different seed produces a different schedule.

use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::serve::{
    generate_arrivals, ChaosConfig, Epoch, Outcome, ServeConfig, ServeSim, SimReport, WorkloadSpec,
};
use borg2019::workload::cells::CellProfile;
use std::sync::Arc;

fn tiny_epoch() -> Arc<Epoch> {
    let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
    Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"))
}

fn chaotic_run(epoch: &Arc<Epoch>, seed: u64) -> SimReport {
    let mut cfg = ServeConfig::small(seed);
    cfg.chaos = ChaosConfig {
        panic_prob: 0.08,
        ..ChaosConfig::moderate(seed)
    };
    let spec = WorkloadSpec {
        seed,
        queries: 300,
        mean_gap_us: 500.0,
        tier_mix: [0.2, 0.4, 0.4],
        epochs: vec!["a".into()],
    };
    let arrivals = generate_arrivals(&spec);
    ServeSim::default().run(cfg, std::slice::from_ref(epoch), &arrivals)
}

/// Ids that went through at least one retry (attempts > 1 by the end,
/// whatever the terminal outcome).
fn retried_ids(r: &SimReport) -> Vec<u64> {
    r.ids_where(|o| {
        matches!(
            o,
            Outcome::Done { attempts, .. }
            | Outcome::Expired { attempts, .. }
            | Outcome::Failed { attempts } if *attempts > 1
        )
    })
}

#[test]
fn same_seed_same_stalls_byte_identical_decisions() {
    let epoch = tiny_epoch();
    let a = chaotic_run(&epoch, 2019);
    let b = chaotic_run(&epoch, 2019);

    assert_eq!(a.log, b.log, "event logs differ between identical runs");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.ids_where(|o| matches!(o, Outcome::Shed { .. })),
        b.ids_where(|o| matches!(o, Outcome::Shed { .. })),
        "shed id sets differ"
    );
    assert_eq!(
        a.ids_where(|o| matches!(o, Outcome::Expired { .. })),
        b.ids_where(|o| matches!(o, Outcome::Expired { .. })),
        "expired id sets differ"
    );
    assert_eq!(retried_ids(&a), retried_ids(&b), "retried id sets differ");
    assert_eq!(a.breaker_trips, b.breaker_trips);
    assert_eq!(a.horizon_us, b.horizon_us);

    // The chaos actually bit: the run exercised retries and sheds, so
    // the equality above pins real robustness traffic, not an idle log.
    assert!(
        a.stats.retries.iter().sum::<u64>() > 0,
        "no retries exercised: {:?}",
        a.stats
    );
    assert!(
        !a.ids_where(|o| matches!(o, Outcome::Shed { .. }))
            .is_empty(),
        "no sheds exercised: {:?}",
        a.stats
    );
}

#[test]
fn different_seed_different_schedule() {
    let epoch = tiny_epoch();
    let a = chaotic_run(&epoch, 2019);
    let c = chaotic_run(&epoch, 2020);
    assert_ne!(a.log, c.log, "different seeds replayed identically");
}

#[test]
fn every_query_gets_exactly_one_outcome() {
    let epoch = tiny_epoch();
    let r = chaotic_run(&epoch, 7);
    assert_eq!(r.outcomes.len(), 300);
    let ids: std::collections::BTreeSet<u64> = r.outcomes.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids.len(), 300, "duplicate terminal outcomes");
}
