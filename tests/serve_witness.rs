//! Observability determinism contracts (DESIGN.md §17).
//!
//! The witness span trees, SLO alert sequence, and flight-recorder
//! dump all live on the deterministic plane: for a fixed seed and
//! chaos schedule, two runs export byte-identical artifacts. The
//! chaos-off control pins the other side — a healthy service fires no
//! alerts — and the exemplar test walks the operator drill-down (p99
//! bucket → exemplar trace id → span tree) end to end.

use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::serve::{
    generate_arrivals, ChaosConfig, Epoch, SegKind, ServeConfig, ServeSim, SimReport, Tier,
    WorkloadSpec,
};
use borg2019::workload::cells::CellProfile;
use std::sync::Arc;

fn tiny_epoch() -> Arc<Epoch> {
    let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
    Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"))
}

/// Overloading chaotic run: same shape as tests/serve_determinism.rs,
/// so the observability surface is pinned over real shed/retry/breaker
/// traffic.
fn chaotic_run(epoch: &Arc<Epoch>, seed: u64) -> SimReport {
    let mut cfg = ServeConfig::small(seed);
    cfg.chaos = ChaosConfig {
        panic_prob: 0.08,
        ..ChaosConfig::moderate(seed)
    };
    let spec = WorkloadSpec {
        seed,
        queries: 300,
        mean_gap_us: 500.0,
        tier_mix: [0.2, 0.4, 0.4],
        epochs: vec!["a".into()],
    };
    let arrivals = generate_arrivals(&spec);
    ServeSim::default().run(cfg, std::slice::from_ref(epoch), &arrivals)
}

/// Gentle, fault-free run: same service, ten times the arrival gap.
fn healthy_run(epoch: &Arc<Epoch>, seed: u64) -> SimReport {
    let mut cfg = ServeConfig::small(seed);
    cfg.chaos = ChaosConfig::off();
    let spec = WorkloadSpec {
        seed,
        queries: 300,
        mean_gap_us: 5_000.0,
        tier_mix: [0.2, 0.4, 0.4],
        epochs: vec!["a".into()],
    };
    let arrivals = generate_arrivals(&spec);
    ServeSim::default().run(cfg, std::slice::from_ref(epoch), &arrivals)
}

#[test]
fn same_seed_chaos_byte_identical_observability() {
    let epoch = tiny_epoch();
    let a = chaotic_run(&epoch, 2019);
    let b = chaotic_run(&epoch, 2019);

    let export = a.trace_export();
    assert!(!export.is_empty(), "chaotic run exported no span trees");
    assert_eq!(export, b.trace_export(), "span-tree exports differ");
    assert_eq!(a.alerts, b.alerts, "alert sequences differ");
    assert_eq!(a.recorder_dump, b.recorder_dump, "recorder dumps differ");

    // The chaos bit: anomalies were actually observed and snapshotted,
    // so the byte equality above pins a non-trivial dump.
    let dump = String::from_utf8(a.recorder_dump.clone()).expect("utf8 dump");
    assert!(
        !dump.starts_with("recorder 0 snapshot"),
        "chaotic overload captured no flight-recorder snapshots:\n{dump}"
    );

    // Every query got a span tree, closed with a terminal outcome.
    assert_eq!(a.witness.len(), 300);
    let text = String::from_utf8(export).expect("utf8 export");
    assert_eq!(text.matches("trace ").count(), 300);
    assert!(!text.contains(" live\n"), "a trace was left open:\n{text}");
}

#[test]
fn different_seed_different_traces() {
    let epoch = tiny_epoch();
    let a = chaotic_run(&epoch, 2019);
    let c = chaotic_run(&epoch, 2020);
    assert_ne!(
        a.trace_export(),
        c.trace_export(),
        "different seeds exported identical span trees"
    );
}

#[test]
fn chaos_off_fires_no_alerts_across_seeds() {
    let epoch = tiny_epoch();
    for seed in [11, 12, 13] {
        let r = healthy_run(&epoch, seed);
        assert!(
            r.alerts.is_empty(),
            "seed {seed}: healthy run fired alerts: {:?}",
            r.alerts
        );
        assert!(
            r.recorder_dump.starts_with(b"recorder 0 snapshot"),
            "seed {seed}: healthy run captured snapshots:\n{}",
            String::from_utf8_lossy(&r.recorder_dump)
        );
        // Budgets untouched: nothing bad happened at all.
        for t in Tier::ALL {
            assert_eq!(
                r.budgets[t.index()].bad,
                0,
                "seed {seed}: {t} saw bad outcomes in a healthy run"
            );
        }
    }
}

#[test]
fn exemplar_drills_down_to_span_tree() {
    let epoch = tiny_epoch();
    let r = chaotic_run(&epoch, 2019);
    let mut drilled = 0;
    for t in Tier::ALL {
        let hist = &r.stats.latency_us[t.index()];
        let Some((_bucket, tid)) = r.witness.exemplar_for(t, hist, 0.99) else {
            continue;
        };
        let tr = r
            .witness
            .trace_by_id(tid)
            .expect("exemplar id resolves to a collected trace");
        assert_eq!(tr.trace_id, tid);
        assert_eq!(tr.tier, t);
        assert_eq!(tr.outcome, "done", "exemplars come from completions");
        // The drill-down lands on a real span tree: a queue segment
        // and at least one attempt with execute time.
        assert!(tr.time_in(SegKind::Attempt) > 0, "no attempt time: {tr:?}");
        assert!(
            tr.segments.iter().any(|s| s.kind == SegKind::Queue),
            "no queue segment: {tr:?}"
        );
        assert!(tr.render().starts_with("trace "));
        drilled += 1;
    }
    assert!(drilled > 0, "no tier had a p99 exemplar to drill into");
}

#[test]
fn trace_ids_are_unique_and_stable() {
    let epoch = tiny_epoch();
    let a = chaotic_run(&epoch, 2019);
    let b = chaotic_run(&epoch, 2019);
    let ids_a: Vec<u64> = (0..300)
        .filter_map(|q| a.witness.trace(q).map(|t| t.trace_id))
        .collect();
    let ids_b: Vec<u64> = (0..300)
        .filter_map(|q| b.witness.trace(q).map(|t| t.trace_id))
        .collect();
    assert_eq!(ids_a, ids_b, "minted trace ids differ across replays");
    let set: std::collections::BTreeSet<u64> = ids_a.iter().copied().collect();
    assert_eq!(set.len(), 300, "trace-id collision");
}
