//! End-to-end integration: profile → workload → simulation → trace →
//! analyses, across crates.

use borg2019::core::analyses::{allocs, delay, submission, summary, terminations, transitions};
use borg2019::core::pipeline::{simulate_2011, simulate_cell, SimScale};
use borg2019::core::tables;
use borg2019::query::prelude::*;
use borg2019::query::Agg;
use borg2019::sim::CellOutcome;
use borg2019::trace::priority::Tier;
use borg2019::trace::schema_2011::downgrade;
use borg2019::trace::validate::validate;
use borg2019::workload::cells::CellProfile;
use std::sync::OnceLock;

fn cell_b() -> &'static CellOutcome {
    static O: OnceLock<CellOutcome> = OnceLock::new();
    O.get_or_init(|| simulate_cell(&CellProfile::cell_2019('b'), SimScale::Tiny, 77))
}

fn cell_2011() -> &'static CellOutcome {
    static O: OnceLock<CellOutcome> = OnceLock::new();
    O.get_or_init(|| simulate_2011(SimScale::Tiny, 78))
}

#[test]
fn whole_pipeline_produces_valid_traces() {
    for outcome in [cell_b(), cell_2011()] {
        assert!(
            validate(&outcome.trace).is_empty(),
            "cell {}",
            outcome.trace.cell_name
        );
        assert!(outcome.trace.collections().len() > 100);
    }
}

#[test]
fn downgraded_2019_trace_is_valid_2011() {
    let v2 = downgrade(&cell_b().trace);
    assert_eq!(
        v2.schema,
        Some(borg2019::trace::trace::SchemaVersion::V2Trace2011)
    );
    assert!(validate(&v2).is_empty());
    // Every collection in the v2 view is a plain job with band-quantized
    // priority.
    for info in v2.collections().values() {
        assert_eq!(
            info.collection_type,
            borg2019::trace::collection::CollectionType::Job
        );
        let raw = info.priority.raw();
        assert!(
            borg2019::trace::priority::RAW_2011_PRIORITIES.contains(&raw),
            "priority {raw} is not a 2011 band value"
        );
    }
}

#[test]
fn csv_round_trip_of_simulated_trace() {
    let dir = std::env::temp_dir().join(format!("borg_e2e_{}", std::process::id()));
    borg2019::trace::csv::write_trace_dir(&cell_b().trace, &dir).expect("write");
    let back = borg2019::trace::csv::read_trace_dir(&dir).expect("read");
    assert_eq!(
        back.collection_events.len(),
        cell_b().trace.collection_events.len()
    );
    assert_eq!(
        back.instance_events.len(),
        cell_b().trace.instance_events.len()
    );
    assert_eq!(back.usage.len(), cell_b().trace.usage.len());
    assert_eq!(back.machine_events, cell_b().trace.machine_events);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyses_agree_with_query_engine() {
    // The hand-written §5.2 analysis and the SQL-style pipeline must
    // count the same kills.
    let stats = terminations::termination_stats(&[cell_b()]);
    let coll = tables::collection_events_table(&cell_b().trace).expect("table");
    let killed_jobs = Query::from(coll)
        .filter(col("type").eq(lit("job")).and(col("event").eq(lit("kill"))))
        .group_by(&[], vec![Agg::count_all("kills")])
        .run()
        .expect("query");
    let kills = killed_jobs.value(0, "kills").unwrap().as_i64().unwrap();
    assert!(kills > 0);
    // Sanity: the analysis-level kill rates are consistent with a
    // non-zero kill count.
    assert!(stats.kill_rate_with_parent > 0.0 || stats.kill_rate_without_parent > 0.0);
}

#[test]
fn longitudinal_rates_grow() {
    let scale = SimScale::Tiny.config(0).scale;
    let r2011 = submission::job_rate_ccdf(cell_2011(), scale)
        .median()
        .unwrap();
    let r2019 = submission::job_rate_ccdf(cell_b(), scale).median().unwrap();
    assert!(
        r2019 > r2011 * 1.5,
        "2019 median job rate {r2019} vs 2011 {r2011}"
    );
}

#[test]
fn table1_summary_over_real_outcomes() {
    let s19 = summary::summarize_era("2019", &[cell_b()]);
    let s11 = summary::summarize_era("2011", &[cell_2011()]);
    assert!(s19.has_alloc_sets && !s11.has_alloc_sets);
    assert!(s19.has_batch_queueing && !s11.has_batch_queueing);
    assert!(s19.max_priority >= 360, "monitoring priorities present");
}

#[test]
fn delay_and_transition_metrics_populated() {
    let ccdf = delay::delay_ccdf(cell_b());
    assert!(ccdf.len() > 100);
    assert!(ccdf.median().unwrap() < 120.0, "median delay in seconds");
    let t = transitions::combined_transitions(cell_b());
    assert!(t.total() > 1000);
}

#[test]
fn alloc_statistics_consistent_between_views() {
    let stats = allocs::alloc_stats(&[cell_b()]);
    // Trace-level recount of alloc sets must match the analysis.
    let infos = cell_b().trace.collections();
    let alloc_sets = infos
        .values()
        .filter(|c| c.collection_type == borg2019::trace::collection::CollectionType::AllocSet)
        .count();
    let expected = alloc_sets as f64 / infos.len() as f64;
    assert!((stats.alloc_set_collection_fraction - expected).abs() < 1e-12);
}

#[test]
fn tier_usage_sums_to_total() {
    let per_tier = cell_b().metrics.average_cpu_util_by_tier();
    let total: f64 = per_tier.values().sum();
    assert!(total > 0.1 && total < 1.0, "total utilization {total}");
    assert!(per_tier.contains_key(&Tier::BestEffortBatch));
    assert!(
        !per_tier.contains_key(&Tier::Monitoring),
        "monitoring folded into prod"
    );
}
