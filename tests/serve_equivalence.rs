//! Serve equivalence: with chaos disabled, the service is transparent.
//!
//! The robustness machinery (admission, deadline plumbing, retry
//! scaffolding, result cache) must be a no-op on the data path: every
//! query served through the full stack in inline mode returns bytes
//! identical to calling the query engine directly, and the single-
//! flight cache changes only *when* work happens, never *what* comes
//! back.

use borg2019::core::pipeline::{simulate_cell, SimScale};
use borg2019::core::tables;
use borg2019::query::prelude::*;
use borg2019::serve::{
    generate_arrivals, plan_catalog, Epoch, ExecMode, Outcome, ServeConfig, ServeSim, TableId,
    WorkloadSpec,
};
use borg2019::workload::cells::CellProfile;
use std::sync::Arc;

#[test]
fn served_bytes_match_direct_library_calls() {
    let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
    let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"));

    let spec = WorkloadSpec {
        seed: 11,
        queries: 120,
        mean_gap_us: 1_500.0,
        tier_mix: [0.3, 0.4, 0.3],
        epochs: vec!["a".into()],
    };
    let arrivals = generate_arrivals(&spec);
    let sim = ServeSim {
        exec: ExecMode::Inline,
        ..ServeSim::default()
    };
    // Chaos off (ServeConfig::small): nothing sheds, nothing expires.
    let report = sim.run(
        ServeConfig::small(11),
        std::slice::from_ref(&epoch),
        &arrivals,
    );

    let done = report.ids_where(|o| matches!(o, Outcome::Done { .. }));
    assert_eq!(done.len(), 120, "chaos-free run completed everything");
    assert_eq!(report.results.len(), 120);
    for (id, served) in &report.results {
        let (_, req) = arrivals
            .iter()
            .find(|(_, r)| r.id == *id)
            .expect("arrival for served id");
        let direct = req
            .plan
            .execute(epoch.table(req.plan.table).clone(), None)
            .expect("direct plan execution");
        assert_eq!(
            served,
            &direct.to_string().into_bytes(),
            "query {id}: served bytes differ from the direct library call"
        );
    }
    // The cache deduplicated but never changed payloads: at most one
    // miss per distinct catalog plan, everything else hits/coalesces.
    assert!(
        (report.cache.misses as usize) <= plan_catalog().len(),
        "cache stats: {:?}",
        report.cache
    );
    assert_eq!(
        report.cache.hits + report.cache.coalesced + report.cache.misses,
        120
    );
}

#[test]
fn plan_layer_matches_handwritten_query() {
    // Pin one catalog plan against the query DSL spelled out by hand,
    // so PlanSpec::execute cannot drift from the engine's semantics.
    let outcome = simulate_cell(&CellProfile::cell_2019('a'), SimScale::Tiny, 1);
    let epoch = Arc::new(Epoch::from_trace("a", 0, &outcome.trace).expect("epoch tables"));
    let plan = plan_catalog()
        .into_iter()
        .find(|p| p.table == TableId::InstanceEvents)
        .expect("instance-events catalog plan");
    let via_plan = plan
        .execute(epoch.table(TableId::InstanceEvents).clone(), None)
        .expect("plan execution");

    let table = tables::instance_events_table(&outcome.trace).expect("instance events table");
    let direct = Query::from(table)
        .filter(col("priority").ge(lit(103i64)))
        .group_by(&["tier"], vec![Agg::count_all("n")])
        .sort_by("n", SortOrder::Descending)
        .run()
        .expect("handwritten query");

    assert_eq!(via_plan.to_string(), direct.to_string());
}
