//! Cross-crate property-based tests (proptest).
//!
//! These check invariants over randomized inputs: statistics math,
//! trace state machines, CSV round-trips, query-engine semantics versus
//! naive reference implementations, and distribution support bounds.

// Exact float assertions are deliberate: deterministic code must
// reproduce values bit-for-bit, so approximate checks would hide bugs.
#![allow(clippy::float_cmp)]

use borg2019::analysis::ccdf::Ccdf;
use borg2019::analysis::moments::Moments;
use borg2019::analysis::percentile::{percentile, top_share};
use borg2019::analysis::timeseries::HourBuckets;
use borg2019::query::prelude::*;
use borg2019::query::Agg;
use borg2019::trace::state::{EventType, StateMachine};
use borg2019::workload::dist::{BoundedPareto, LogNormal, Sample, Uniform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---- analysis ----------------------------------------------------

    #[test]
    fn ccdf_is_monotone_nonincreasing(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let c = Ccdf::from_samples(xs.iter().copied());
        let lo = xs.iter().copied().fold(f64::MAX, f64::min);
        let hi = xs.iter().copied().fold(f64::MIN, f64::max);
        let mut prev = 1.0;
        for (_, p) in c.linear_series(lo, hi, 50) {
            prop_assert!(p <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        prop_assert_eq!(c.eval(hi), 0.0);
    }

    #[test]
    fn moments_match_naive(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let m: Moments = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((m.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((m.population_variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    #[test]
    fn moments_merge_associative(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let whole: Moments = a.iter().chain(b.iter()).copied().collect();
        let mut left: Moments = a.iter().copied().collect();
        let right: Moments = b.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
    }

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(-1e3f64..1e3, 1..100), p in 0.0f64..100.0) {
        let v = percentile(&xs, p).unwrap();
        let lo = xs.iter().copied().fold(f64::MAX, f64::min);
        let hi = xs.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn top_share_bounds(xs in prop::collection::vec(0.01f64..1e3, 2..200), pct in 0.1f64..100.0) {
        let s = top_share(&xs, pct).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        // The top share always covers at least its proportional share.
        prop_assert!(s >= pct / 100.0 - 1.0 / xs.len() as f64 - 1e-9);
    }

    #[test]
    fn hour_buckets_conserve_mass(
        intervals in prop::collection::vec((0u64..1000, 0u64..1000, 0.0f64..10.0), 0..30)
    ) {
        let mut b = HourBuckets::new(100, 1000);
        let mut expected = 0.0;
        for &(s, e, r) in &intervals {
            let (s, e) = (s.min(1000), e.min(1000));
            b.add_interval(s, e, r);
            if e > s {
                expected += r * (e - s) as f64;
            }
        }
        let total: f64 = b.totals().iter().sum();
        prop_assert!((total - expected).abs() < 1e-6 * (1.0 + expected));
    }

    // ---- trace state machine ------------------------------------------

    #[test]
    fn state_machine_never_leaves_dead_without_resubmit(
        events in prop::collection::vec(0usize..11, 0..30)
    ) {
        let all = EventType::ALL;
        let mut sm = StateMachine::new();
        for &i in &events {
            let before = sm.state();
            let result = sm.apply(all[i]);
            match result {
                Ok(state) => {
                    // A terminal event from a live state must produce Dead.
                    if all[i].is_terminal() && before.is_some_and(|s| !s.is_dead()) {
                        prop_assert!(state.is_dead());
                    }
                }
                Err(_) => {
                    // Rejected events leave the state unchanged.
                    prop_assert_eq!(sm.state(), before);
                }
            }
        }
    }

    // ---- distributions -------------------------------------------------

    #[test]
    fn bounded_pareto_support(alpha in 0.2f64..3.0, lo in 0.01f64..10.0, span in 1.5f64..100.0, seed in 0u64..1000) {
        let hi = lo * span;
        let d = BoundedPareto::new(alpha, lo, hi);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-9);
        }
        prop_assert!(d.mean() >= lo && d.mean() <= hi);
    }

    #[test]
    fn lognormal_positive(mu in -5.0f64..5.0, sigma in 0.0f64..3.0, seed in 0u64..1000) {
        let d = LogNormal::new(mu, sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_in_bounds(lo in -100.0f64..100.0, w in 0.0f64..50.0, seed in 0u64..1000) {
        let d = Uniform::new(lo, lo + w);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + w);
        }
    }

    // ---- query engine vs naive reference --------------------------------

    #[test]
    fn filter_matches_naive(xs in prop::collection::vec(-100i64..100, 0..80), threshold in -100i64..100) {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        for &x in &xs {
            t.push_row(vec![Value::Int(x)]).unwrap();
        }
        let out = Query::from(t).filter(col("v").gt(lit(threshold))).run().unwrap();
        let expected: Vec<i64> = xs.iter().copied().filter(|&x| x > threshold).collect();
        prop_assert_eq!(out.num_rows(), expected.len());
        for (r, &e) in expected.iter().enumerate() {
            prop_assert_eq!(out.value(r, "v").unwrap(), Value::Int(e));
        }
    }

    #[test]
    fn group_by_sums_match_naive(rows in prop::collection::vec((0u8..5, -100.0f64..100.0), 0..80)) {
        let mut t = Table::new(vec![("k", DataType::Int), ("v", DataType::Float)]);
        for &(k, v) in &rows {
            t.push_row(vec![Value::Int(i64::from(k)), Value::Float(v)]).unwrap();
        }
        let out = Query::from(t)
            .group_by(&["k"], vec![Agg::sum("v", "s"), Agg::count_all("n")])
            .run()
            .unwrap();
        let mut naive: std::collections::BTreeMap<i64, (f64, i64)> = Default::default();
        for &(k, v) in &rows {
            let e = naive.entry(i64::from(k)).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(out.num_rows(), naive.len());
        for r in 0..out.num_rows() {
            let k = out.value(r, "k").unwrap().as_i64().unwrap();
            let s = out.value(r, "s").unwrap().as_f64().unwrap();
            let n = out.value(r, "n").unwrap().as_i64().unwrap();
            let (es, en) = naive[&k];
            prop_assert!((s - es).abs() < 1e-6 * (1.0 + es.abs()));
            prop_assert_eq!(n, en);
        }
    }

    #[test]
    fn sort_is_sorted_and_permutation(xs in prop::collection::vec(-1000i64..1000, 0..100)) {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        for &x in &xs {
            t.push_row(vec![Value::Int(x)]).unwrap();
        }
        let out = Query::from(t).sort_by("v", SortOrder::Ascending).run().unwrap();
        let got: Vec<i64> = (0..out.num_rows())
            .map(|r| out.value(r, "v").unwrap().as_i64().unwrap())
            .collect();
        let mut expected = xs.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    // ---- trace CSV round trip -------------------------------------------

    #[test]
    fn machine_events_csv_round_trip(
        rows in prop::collection::vec((0u32..100, 0.01f64..1.0, 0.01f64..1.0, 0u8..7), 0..40)
    ) {
        use borg2019::trace::csv::{read_machine_events, write_machine_events};
        use borg2019::trace::machine::{MachineEvent, MachineId, Platform};
        use borg2019::trace::resources::Resources;
        use borg2019::trace::time::Micros;
        let events: Vec<MachineEvent> = rows
            .iter()
            .map(|&(id, cpu, mem, plat)| {
                MachineEvent::add(Micros::ZERO, MachineId(id), Resources::new(cpu, mem), Platform(plat))
            })
            .collect();
        let mut buf = Vec::new();
        write_machine_events(&mut buf, &events).unwrap();
        let back = read_machine_events(&buf[..]).unwrap();
        prop_assert_eq!(back, events);
    }
}
